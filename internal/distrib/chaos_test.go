package distrib

import (
	"encoding/json"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"fedpkd/internal/baselines"
	"fedpkd/internal/comm"
	"fedpkd/internal/core"
	"fedpkd/internal/dataset"
	"fedpkd/internal/faults"
	"fedpkd/internal/fl"
	"fedpkd/internal/fl/engine"
	"fedpkd/internal/proto"
	"fedpkd/internal/stats"
	"fedpkd/internal/tensor"
	"fedpkd/internal/transport"
)

// chaosEnv is a deliberately small environment: chaos runs burn wall-clock
// on straggler deadlines, so training itself must be cheap enough that a
// generous ClientTimeout never misclassifies a healthy client as a
// straggler (which would break run-to-run determinism).
func chaosEnv(t *testing.T) *fl.Env {
	t.Helper()
	spec := dataset.SynthC10(23)
	spec.Noise = 0.6
	env, err := fl.NewEnv(fl.EnvConfig{
		Spec:       spec,
		NumClients: 3,
		TrainSize:  90, TestSize: 60, PublicSize: 45, LocalTestSize: 30,
		Partition: fl.PartitionConfig{Kind: fl.PartitionDirichlet, Alpha: 0.5},
		Seed:      23,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func chaosFedAvg(t *testing.T, env *fl.Env) *baselines.FedAvg {
	t.Helper()
	f, err := baselines.NewFedAvg(baselines.FedAvgConfig{
		Common:      engine.Config{Env: env, Seed: 9},
		LocalEpochs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func chaosFedPKD(t *testing.T, env *fl.Env) *core.FedPKD {
	t.Helper()
	f, err := core.New(core.Config{
		Env:                 env,
		ClientPrivateEpochs: 1,
		ClientPublicEpochs:  1,
		ServerEpochs:        1,
		Seed:                9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// chaosTimeout is generous relative to a round of chaosEnv training (tens of
// milliseconds even under the race detector), so only injected faults — never
// scheduling noise — decide which uploads miss the deadline.
const chaosTimeout = 2 * time.Second

// TestChaosFedPKDDeterministicPartialRounds is the acceptance scenario:
// distributed FedPKD under crash+drop chaos with a finite straggler deadline
// completes every round with partial cohorts, and the same seed yields the
// same history — degraded rounds included — across two independent runs.
func TestChaosFedPKDDeterministicPartialRounds(t *testing.T) {
	plan := &faults.Plan{Seed: 42, CrashProb: 0.2, DropProb: 0.1}
	const rounds = 3
	run := func() *fl.History {
		env := chaosEnv(t)
		hist, err := RunAlgorithmOpts(chaosFedPKD(t, env), rounds, Options{
			Mode:          ModeBus,
			ClientTimeout: chaosTimeout,
			Faults:        plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	h1 := run()
	if h1.Len() != rounds {
		t.Fatalf("history rounds = %d, want %d (chaos must not abort the run)", h1.Len(), rounds)
	}
	if h1.DegradedCount() == 0 {
		t.Fatal("no degraded rounds recorded; this plan+seed is known to crash clients")
	}
	for _, d := range h1.Degraded {
		if d.Cohort >= d.Expected || d.Cohort+len(d.Missing) != d.Expected {
			t.Fatalf("inconsistent degraded record %+v", d)
		}
	}
	h2 := run()
	j1, _ := json.Marshal(h1)
	j2, _ := json.Marshal(h2)
	if string(j1) != string(j2) {
		t.Fatalf("same-seed chaos runs diverged:\n%s\nvs\n%s", j1, j2)
	}
}

// TestChaosTCPCrashRestart drives the full reconnect path: crashed clients
// drop their TCP connection and redial through the join handshake, and the
// run still completes every round.
func TestChaosTCPCrashRestart(t *testing.T) {
	var fs faults.Stats
	env := chaosEnv(t)
	hist, err := RunAlgorithmOpts(chaosFedAvg(t, env), 3, Options{
		Mode:          ModeTCP,
		ClientTimeout: chaosTimeout,
		Faults:        &faults.Plan{Seed: 7, CrashProb: 0.3},
		FaultStats:    &fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Len() != 3 {
		t.Fatalf("history rounds = %d, want 3", hist.Len())
	}
	if fs.Snapshot().Crashes == 0 {
		t.Fatal("no crashes injected; this plan+seed is known to crash clients")
	}
	if hist.DegradedCount() == 0 {
		t.Fatal("crashed rounds must be recorded as degraded")
	}
}

// TestChaosRetryRecoversSendFailures checks the client backoff loop: with
// only transient send failures injected (no message loss), retries keep the
// protocol whole and the run completes.
func TestChaosRetrySendFailures(t *testing.T) {
	var fs faults.Stats
	env := chaosEnv(t)
	hist, err := RunAlgorithmOpts(chaosFedAvg(t, env), 3, Options{
		Mode:          ModeBus,
		ClientTimeout: chaosTimeout,
		Faults:        &faults.Plan{Seed: 5, SendFailProb: 0.5},
		FaultStats:    &fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Len() != 3 {
		t.Fatalf("history rounds = %d, want 3", hist.Len())
	}
	if fs.Snapshot().SendFails == 0 {
		t.Fatal("no send failures injected; this plan+seed is known to inject them")
	}
}

// TestChaosZeroPlanMatchesStrict pins the degradation-free contract: turning
// on the tolerant machinery (a finite deadline) without any faults must not
// change a single byte of the history relative to the strict runtime.
func TestChaosZeroPlanMatchesStrict(t *testing.T) {
	tolerant, err := RunAlgorithmOpts(chaosFedAvg(t, chaosEnv(t)), 2, Options{
		Mode:          ModeBus,
		ClientTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := RunAlgorithm(chaosFedAvg(t, chaosEnv(t)), ModeBus, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tolerant, strict) {
		t.Fatalf("tolerant-but-healthy run diverged from strict run:\n%+v\nvs\n%+v", tolerant, strict)
	}
	if tolerant.DegradedCount() != 0 {
		t.Fatalf("healthy run recorded degraded rounds: %+v", tolerant.Degraded)
	}
}

// TestChaosQuorumAbort: with every client required and crashes injected, the
// first partial round must abort with ErrQuorumNotMet instead of silently
// aggregating a rump cohort.
func TestChaosQuorumAbort(t *testing.T) {
	env := chaosEnv(t)
	_, err := RunAlgorithmOpts(chaosFedAvg(t, env), 6, Options{
		Mode:          ModeBus,
		ClientTimeout: chaosTimeout,
		MinQuorum:     3,
		Faults:        &faults.Plan{Seed: 11, CrashProb: 0.5},
	})
	if !errors.Is(err, ErrQuorumNotMet) {
		t.Fatalf("err = %v, want ErrQuorumNotMet", err)
	}
}

func TestChaosOptionsValidation(t *testing.T) {
	env := chaosEnv(t)
	if _, err := RunAlgorithmOpts(chaosFedAvg(t, env), 1, Options{
		Faults: &faults.Plan{DropProb: 0.1},
	}); err == nil {
		t.Error("lossy plan without ClientTimeout should error")
	}
	if _, err := RunAlgorithmOpts(chaosFedAvg(t, env), 1, Options{
		MinQuorum: 4,
	}); err == nil {
		t.Error("MinQuorum above the fleet size should error")
	}
	if _, err := RunAlgorithmOpts(chaosFedAvg(t, env), 1, Options{
		Faults: &faults.Plan{DropProb: 1.5}, ClientTimeout: time.Second,
	}); err == nil {
		t.Error("out-of-range probability should error")
	}
}

// TestChaosServerRejectsStaleAndDuplicate drives collectUploads directly:
// strict mode rejects a stale-round upload with the named error; tolerant
// mode counts and drops stale, duplicate, and mismatched envelopes while
// accepting the one valid upload.
func TestChaosServerRejectsStaleAndDuplicate(t *testing.T) {
	env := chaosEnv(t)
	runner, err := engine.Of(chaosFedAvg(t, env))
	if err != nil {
		t.Fatal(err)
	}
	round := runner.BeginRound()

	sendRaw := func(conn transport.Conn, from, envRound, ruRound, client int) {
		t.Helper()
		payload, err := transport.Encode(transport.RoundUpload{Round: ruRound, Client: client})
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(&transport.Envelope{Kind: transport.KindUpload, From: from, To: -1, Round: envRound, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("strict", func(t *testing.T) {
		bus := transport.NewBus(3, 6)
		defer bus.Close()
		rx := newReceiver(bus.ServerConn())
		defer rx.stop()
		sendRaw(bus.ClientConn(0), 0, round+5, round+5, 0) // stale round stamp
		_, _, roundErr, err := collectUploads(round, runner, rx, []int{0, 1, 2}, fullRegistry(3), &Options{}, comm.CodecFloat64, nil, false, &roundStats{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(roundErr, ErrStaleEnvelope) {
			t.Fatalf("roundErr = %v, want ErrStaleEnvelope", roundErr)
		}
	})

	t.Run("strict-peer-mismatch", func(t *testing.T) {
		bus := transport.NewBus(3, 6)
		defer bus.Close()
		rx := newReceiver(bus.ServerConn())
		defer rx.stop()
		sendRaw(bus.ClientConn(0), 0, round, round, 1) // payload claims client 1, conn is client 0
		_, _, roundErr, err := collectUploads(round, runner, rx, []int{0, 1, 2}, fullRegistry(3), &Options{}, comm.CodecFloat64, nil, false, &roundStats{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(roundErr, ErrPeerMismatch) {
			t.Fatalf("roundErr = %v, want ErrPeerMismatch", roundErr)
		}
	})

	t.Run("tolerant", func(t *testing.T) {
		bus := transport.NewBus(3, 6)
		defer bus.Close()
		rx := newReceiver(bus.ServerConn())
		defer rx.stop()
		sendRaw(bus.ClientConn(0), 0, round+5, round+5, 0) // stale: dropped, client 0 still missing
		sendRaw(bus.ClientConn(1), 1, round, round, 1)     // valid
		sendRaw(bus.ClientConn(1), 1, round, round, 1)     // duplicate: dropped
		rs := &roundStats{}
		opts := &Options{ClientTimeout: 300 * time.Millisecond}
		_, report, roundErr, err := collectUploads(round, runner, rx, []int{0, 1, 2}, fullRegistry(3), opts, comm.CodecFloat64, nil, true, rs, nil)
		if err != nil || roundErr != nil {
			t.Fatalf("errs = %v, %v", err, roundErr)
		}
		if report.cohort != 1 || !reflect.DeepEqual(report.missing, []int{0, 2}) {
			t.Fatalf("report = %+v, want cohort 1 missing [0 2]", report)
		}
		if rs.stale.Load() != 1 || rs.dup.Load() != 1 {
			t.Fatalf("stale=%d dup=%d, want 1 and 1", rs.stale.Load(), rs.dup.Load())
		}
	})
}

// TestChaosTCPGoroutineLeakFree pins the mux fix: a finished TCP run must
// not leave receiver pumps or accept handlers blocked forever.
func TestChaosTCPGoroutineLeakFree(t *testing.T) {
	before := runtime.NumGoroutine()
	env := chaosEnv(t)
	if _, err := RunAlgorithm(chaosFedAvg(t, env), ModeTCP, 2, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+2 { // small slack for runtime background goroutines
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before run, %d five seconds after", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// int8Upload builds one deterministic upload payload and returns its wire
// encoding under the given codec/ref, after an optional corruption hook. The
// payload is rebuilt from the same seed on every call, so a clean encode can
// be compared against an independent ApplyCodec of the same values.
func int8Upload(t *testing.T, round, client int, codec comm.Codec, ref []float64, corrupt func(*transport.WirePayload)) ([]byte, *engine.Payload) {
	t.Helper()
	rng := stats.NewRNG(77)
	up := &engine.Payload{
		Logits:     tensor.Randn(rng, 2, 5, 1),
		Protos:     proto.NewSet(3, 4),
		Params:     []float64{0.5, -1.25, 2},
		NumSamples: 7,
	}
	up.Protos.Vectors[1] = []float64{1, -2, 3, -4}
	up.Protos.Counts[1] = 5
	w, err := transport.PayloadToWireIn(up, codec, ref)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != nil {
		corrupt(&w)
	}
	payload, err := transport.Encode(transport.RoundUpload{Round: round, Client: client, HasPayload: true, Payload: w})
	if err != nil {
		t.Fatal(err)
	}
	return payload, up
}

// TestChaosInt8UploadValidation drives collectUploads against int8-coded
// uploads: a bit-flipped quantized section fails the per-section CRC below
// the gob layer with the named comm error, a raw-float64 upload into an int8
// round is a codec mismatch, and a delta-coded section arriving in a round
// without a parameter reference is rejected rather than mis-decoded — in
// every case an error, never a panic or silently-wrong values.
func TestChaosInt8UploadValidation(t *testing.T) {
	env := chaosEnv(t)
	runner, err := engine.Of(chaosFedAvg(t, env))
	if err != nil {
		t.Fatal(err)
	}
	round := runner.BeginRound()
	ref := []float64{0.25, -0.5, 1.5}

	send := func(conn transport.Conn, from int, payload []byte) {
		t.Helper()
		if err := conn.Send(&transport.Envelope{Kind: transport.KindUpload, From: from, To: -1, Round: round, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}

	strictCase := func(name string, wantErr error, ref []float64, payload []byte) {
		t.Run(name, func(t *testing.T) {
			bus := transport.NewBus(3, 6)
			defer bus.Close()
			rx := newReceiver(bus.ServerConn())
			defer rx.stop()
			send(bus.ClientConn(0), 0, payload)
			_, _, roundErr, err := collectUploads(round, runner, rx, []int{0, 1, 2}, fullRegistry(3), &Options{}, comm.CodecInt8, ref, false, &roundStats{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !errors.Is(roundErr, wantErr) {
				t.Fatalf("roundErr = %v, want %v", roundErr, wantErr)
			}
		})
	}

	flipped, _ := int8Upload(t, round, 0, comm.CodecInt8, ref, func(w *transport.WirePayload) {
		w.LogitsEnc[len(w.LogitsEnc)-1] ^= 0x01
	})
	strictCase("strict-bitflip", comm.ErrSectionChecksum, ref, flipped)

	rawUpload, _ := int8Upload(t, round, 0, comm.CodecFloat64, nil, nil)
	strictCase("strict-codec-mismatch", ErrCodecMismatch, ref, rawUpload)

	deltaUpload, _ := int8Upload(t, round, 0, comm.CodecInt8, ref, nil)
	strictCase("strict-delta-without-ref", comm.ErrSectionRef, nil, deltaUpload)

	t.Run("tolerant", func(t *testing.T) {
		bus := transport.NewBus(3, 6)
		defer bus.Close()
		rx := newReceiver(bus.ServerConn())
		defer rx.stop()
		send(bus.ClientConn(0), 0, flipped)   // CRC reject
		send(bus.ClientConn(2), 2, rawUpload) // codec mismatch reject (checked before peer identity)
		clean, orig := int8Upload(t, round, 1, comm.CodecInt8, ref, nil)
		send(bus.ClientConn(1), 1, clean)
		rs := &roundStats{}
		opts := &Options{ClientTimeout: 300 * time.Millisecond}
		uploads, _, roundErr, err := collectUploads(round, runner, rx, []int{0, 1, 2}, fullRegistry(3), opts, comm.CodecInt8, ref, true, rs, nil)
		if err != nil || roundErr != nil {
			t.Fatalf("errs = %v, %v", err, roundErr)
		}
		if got := rs.corrupt.Load(); got != 2 {
			t.Fatalf("corrupt = %d, want 2", got)
		}
		if len(uploads) != 1 || uploads[0].Client != 1 {
			t.Fatalf("uploads = %+v, want exactly client 1", uploads)
		}
		want := orig.ApplyCodec(comm.CodecInt8, ref)
		got := uploads[0].Payload
		if !reflect.DeepEqual(got.Params, want.Params) {
			t.Errorf("decoded params %v, want quantized %v", got.Params, want.Params)
		}
		if !reflect.DeepEqual(got.Logits.Data, want.Logits.Data) {
			t.Errorf("decoded logits diverge from ApplyCodec")
		}
		if !reflect.DeepEqual(got.Protos.Vectors, want.Protos.Vectors) {
			t.Errorf("decoded protos diverge from ApplyCodec")
		}
	})
}

// TestChaosInt8CorruptionRun is the run-level half of the quantized-chaos
// contract: the full tolerant runtime with the int8 wire codec under payload
// corruption completes every round (CRC-failed sections are counted drops,
// never panics or poisoned aggregates), and the same seed reproduces the
// same degraded history.
func TestChaosInt8CorruptionRun(t *testing.T) {
	plan := &faults.Plan{Seed: 31, CorruptProb: 0.3}
	const rounds = 3
	run := func() *fl.History {
		var fs faults.Stats
		env := chaosEnv(t)
		algo := chaosFedPKD(t, env)
		r, err := engine.Of(algo)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.SetCodec(comm.CodecInt8); err != nil {
			t.Fatal(err)
		}
		hist, err := RunAlgorithmOpts(algo, rounds, Options{
			Mode:          ModeBus,
			ClientTimeout: chaosTimeout,
			Faults:        plan,
			FaultStats:    &fs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if fs.Snapshot().Corrupts == 0 {
			t.Fatal("no corruption injected; this plan+seed is known to corrupt payloads")
		}
		return hist
	}
	h1 := run()
	if h1.Len() != rounds {
		t.Fatalf("history rounds = %d, want %d (corrupt int8 payloads must not abort the run)", h1.Len(), rounds)
	}
	h2 := run()
	j1, _ := json.Marshal(h1)
	j2, _ := json.Marshal(h2)
	if string(j1) != string(j2) {
		t.Fatalf("same-seed int8 chaos runs diverged:\n%s\nvs\n%s", j1, j2)
	}
}
