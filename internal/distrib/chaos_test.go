package distrib

import (
	"encoding/json"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"fedpkd/internal/baselines"
	"fedpkd/internal/comm"
	"fedpkd/internal/core"
	"fedpkd/internal/dataset"
	"fedpkd/internal/faults"
	"fedpkd/internal/fl"
	"fedpkd/internal/fl/engine"
	"fedpkd/internal/obs"
	"fedpkd/internal/proto"
	"fedpkd/internal/stats"
	"fedpkd/internal/tensor"
	"fedpkd/internal/transport"
)

// chaosEnv is a deliberately small environment: chaos runs burn wall-clock
// on straggler deadlines, so training itself must be cheap enough that a
// generous ClientTimeout never misclassifies a healthy client as a
// straggler (which would break run-to-run determinism).
func chaosEnv(t *testing.T) *fl.Env {
	t.Helper()
	spec := dataset.SynthC10(23)
	spec.Noise = 0.6
	env, err := fl.NewEnv(fl.EnvConfig{
		Spec:       spec,
		NumClients: 3,
		TrainSize:  90, TestSize: 60, PublicSize: 45, LocalTestSize: 30,
		Partition: fl.PartitionConfig{Kind: fl.PartitionDirichlet, Alpha: 0.5},
		Seed:      23,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func chaosFedAvg(t *testing.T, env *fl.Env) *baselines.FedAvg {
	t.Helper()
	f, err := baselines.NewFedAvg(baselines.FedAvgConfig{
		Common:      engine.Config{Env: env, Seed: 9},
		LocalEpochs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func chaosFedPKD(t *testing.T, env *fl.Env) *core.FedPKD {
	t.Helper()
	f, err := core.New(core.Config{
		Env:                 env,
		ClientPrivateEpochs: 1,
		ClientPublicEpochs:  1,
		ServerEpochs:        1,
		Seed:                9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// chaosTimeout is generous relative to a round of chaosEnv training (tens of
// milliseconds even under the race detector), so only injected faults — never
// scheduling noise — decide which uploads miss the deadline.
const chaosTimeout = 2 * time.Second

// TestChaosFedPKDDeterministicPartialRounds is the acceptance scenario:
// distributed FedPKD under crash+drop chaos with a finite straggler deadline
// completes every round with partial cohorts, and the same seed yields the
// same history — degraded rounds included — across two independent runs.
func TestChaosFedPKDDeterministicPartialRounds(t *testing.T) {
	plan := &faults.Plan{Seed: 42, CrashProb: 0.2, DropProb: 0.1}
	const rounds = 3
	run := func() *fl.History {
		env := chaosEnv(t)
		hist, err := RunAlgorithmOpts(chaosFedPKD(t, env), rounds, Options{
			Mode:          ModeBus,
			ClientTimeout: chaosTimeout,
			Faults:        plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return hist
	}
	h1 := run()
	if h1.Len() != rounds {
		t.Fatalf("history rounds = %d, want %d (chaos must not abort the run)", h1.Len(), rounds)
	}
	if h1.DegradedCount() == 0 {
		t.Fatal("no degraded rounds recorded; this plan+seed is known to crash clients")
	}
	for _, d := range h1.Degraded {
		if d.Cohort >= d.Expected || d.Cohort+len(d.Missing) != d.Expected {
			t.Fatalf("inconsistent degraded record %+v", d)
		}
	}
	h2 := run()
	j1, _ := json.Marshal(h1)
	j2, _ := json.Marshal(h2)
	if string(j1) != string(j2) {
		t.Fatalf("same-seed chaos runs diverged:\n%s\nvs\n%s", j1, j2)
	}
}

// TestChaosTCPCrashRestart drives the full reconnect path: crashed clients
// drop their TCP connection and redial through the join handshake, and the
// run still completes every round.
func TestChaosTCPCrashRestart(t *testing.T) {
	var fs faults.Stats
	env := chaosEnv(t)
	hist, err := RunAlgorithmOpts(chaosFedAvg(t, env), 3, Options{
		Mode:          ModeTCP,
		ClientTimeout: chaosTimeout,
		Faults:        &faults.Plan{Seed: 7, CrashProb: 0.3},
		FaultStats:    &fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Len() != 3 {
		t.Fatalf("history rounds = %d, want 3", hist.Len())
	}
	if fs.Snapshot().Crashes == 0 {
		t.Fatal("no crashes injected; this plan+seed is known to crash clients")
	}
	if hist.DegradedCount() == 0 {
		t.Fatal("crashed rounds must be recorded as degraded")
	}
}

// TestChaosRetryRecoversSendFailures checks the client backoff loop: with
// only transient send failures injected (no message loss), retries keep the
// protocol whole and the run completes.
func TestChaosRetrySendFailures(t *testing.T) {
	var fs faults.Stats
	env := chaosEnv(t)
	hist, err := RunAlgorithmOpts(chaosFedAvg(t, env), 3, Options{
		Mode:          ModeBus,
		ClientTimeout: chaosTimeout,
		Faults:        &faults.Plan{Seed: 5, SendFailProb: 0.5},
		FaultStats:    &fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Len() != 3 {
		t.Fatalf("history rounds = %d, want 3", hist.Len())
	}
	if fs.Snapshot().SendFails == 0 {
		t.Fatal("no send failures injected; this plan+seed is known to inject them")
	}
}

// TestChaosZeroPlanMatchesStrict pins the degradation-free contract: turning
// on the tolerant machinery (a finite deadline) without any faults must not
// change a single byte of the history relative to the strict runtime.
func TestChaosZeroPlanMatchesStrict(t *testing.T) {
	tolerant, err := RunAlgorithmOpts(chaosFedAvg(t, chaosEnv(t)), 2, Options{
		Mode:          ModeBus,
		ClientTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := RunAlgorithm(chaosFedAvg(t, chaosEnv(t)), ModeBus, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tolerant, strict) {
		t.Fatalf("tolerant-but-healthy run diverged from strict run:\n%+v\nvs\n%+v", tolerant, strict)
	}
	if tolerant.DegradedCount() != 0 {
		t.Fatalf("healthy run recorded degraded rounds: %+v", tolerant.Degraded)
	}
}

// TestChaosQuorumAbort: with every client required and crashes injected, the
// first partial round must abort with ErrQuorumNotMet instead of silently
// aggregating a rump cohort.
func TestChaosQuorumAbort(t *testing.T) {
	env := chaosEnv(t)
	_, err := RunAlgorithmOpts(chaosFedAvg(t, env), 6, Options{
		Mode:          ModeBus,
		ClientTimeout: chaosTimeout,
		MinQuorum:     3,
		Faults:        &faults.Plan{Seed: 11, CrashProb: 0.5},
	})
	if !errors.Is(err, ErrQuorumNotMet) {
		t.Fatalf("err = %v, want ErrQuorumNotMet", err)
	}
}

func TestChaosOptionsValidation(t *testing.T) {
	env := chaosEnv(t)
	if _, err := RunAlgorithmOpts(chaosFedAvg(t, env), 1, Options{
		Faults: &faults.Plan{DropProb: 0.1},
	}); err == nil {
		t.Error("lossy plan without ClientTimeout should error")
	}
	if _, err := RunAlgorithmOpts(chaosFedAvg(t, env), 1, Options{
		MinQuorum: 4,
	}); err == nil {
		t.Error("MinQuorum above the fleet size should error")
	}
	if _, err := RunAlgorithmOpts(chaosFedAvg(t, env), 1, Options{
		Faults: &faults.Plan{DropProb: 1.5}, ClientTimeout: time.Second,
	}); err == nil {
		t.Error("out-of-range probability should error")
	}
}

// TestChaosServerRejectsStaleAndDuplicate drives collectUploads directly:
// strict mode rejects a stale-round upload with the named error; tolerant
// mode counts and drops stale, duplicate, and mismatched envelopes while
// accepting the one valid upload.
func TestChaosServerRejectsStaleAndDuplicate(t *testing.T) {
	env := chaosEnv(t)
	runner, err := engine.Of(chaosFedAvg(t, env))
	if err != nil {
		t.Fatal(err)
	}
	round := runner.BeginRound()

	sendRaw := func(conn transport.Conn, from, envRound, ruRound, client int) {
		t.Helper()
		payload, err := transport.Encode(transport.RoundUpload{Round: ruRound, Client: client})
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(&transport.Envelope{Kind: transport.KindUpload, From: from, To: -1, Round: envRound, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("strict", func(t *testing.T) {
		bus := transport.NewBus(3, 6)
		defer bus.Close()
		rx := newReceiver(bus.ServerConn())
		defer rx.stop()
		sendRaw(bus.ClientConn(0), 0, round+5, round+5, 0) // stale round stamp
		_, _, roundErr, err := collectUploads(round, runner, rx, []int{0, 1, 2}, fullRegistry(3), &Options{}, comm.CodecFloat64, nil, false, &roundStats{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(roundErr, ErrStaleEnvelope) {
			t.Fatalf("roundErr = %v, want ErrStaleEnvelope", roundErr)
		}
	})

	t.Run("strict-peer-mismatch", func(t *testing.T) {
		bus := transport.NewBus(3, 6)
		defer bus.Close()
		rx := newReceiver(bus.ServerConn())
		defer rx.stop()
		sendRaw(bus.ClientConn(0), 0, round, round, 1) // payload claims client 1, conn is client 0
		_, _, roundErr, err := collectUploads(round, runner, rx, []int{0, 1, 2}, fullRegistry(3), &Options{}, comm.CodecFloat64, nil, false, &roundStats{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(roundErr, ErrPeerMismatch) {
			t.Fatalf("roundErr = %v, want ErrPeerMismatch", roundErr)
		}
	})

	t.Run("tolerant", func(t *testing.T) {
		bus := transport.NewBus(3, 6)
		defer bus.Close()
		rx := newReceiver(bus.ServerConn())
		defer rx.stop()
		sendRaw(bus.ClientConn(0), 0, round+5, round+5, 0) // stale: dropped, client 0 still missing
		sendRaw(bus.ClientConn(1), 1, round, round, 1)     // valid
		sendRaw(bus.ClientConn(1), 1, round, round, 1)     // duplicate: dropped
		rs := &roundStats{}
		opts := &Options{ClientTimeout: 300 * time.Millisecond}
		_, report, roundErr, err := collectUploads(round, runner, rx, []int{0, 1, 2}, fullRegistry(3), opts, comm.CodecFloat64, nil, true, rs, nil)
		if err != nil || roundErr != nil {
			t.Fatalf("errs = %v, %v", err, roundErr)
		}
		if report.cohort != 1 || !reflect.DeepEqual(report.missing, []int{0, 2}) {
			t.Fatalf("report = %+v, want cohort 1 missing [0 2]", report)
		}
		if rs.stale.Load() != 1 || rs.dup.Load() != 1 {
			t.Fatalf("stale=%d dup=%d, want 1 and 1", rs.stale.Load(), rs.dup.Load())
		}
	})
}

// TestChaosTCPGoroutineLeakFree pins the mux fix: a finished TCP run must
// not leave receiver pumps or accept handlers blocked forever.
func TestChaosTCPGoroutineLeakFree(t *testing.T) {
	before := runtime.NumGoroutine()
	env := chaosEnv(t)
	if _, err := RunAlgorithm(chaosFedAvg(t, env), ModeTCP, 2, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+2 { // small slack for runtime background goroutines
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before run, %d five seconds after", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// int8Upload builds one deterministic upload payload and returns its wire
// encoding under the given codec/ref, after an optional corruption hook. The
// payload is rebuilt from the same seed on every call, so a clean encode can
// be compared against an independent ApplyCodec of the same values.
func int8Upload(t *testing.T, round, client int, codec comm.Codec, ref []float64, corrupt func(*transport.WirePayload)) ([]byte, *engine.Payload) {
	t.Helper()
	rng := stats.NewRNG(77)
	up := &engine.Payload{
		Logits:     tensor.Randn(rng, 2, 5, 1),
		Protos:     proto.NewSet(3, 4),
		Params:     []float64{0.5, -1.25, 2},
		NumSamples: 7,
	}
	up.Protos.Vectors[1] = []float64{1, -2, 3, -4}
	up.Protos.Counts[1] = 5
	w, err := transport.PayloadToWireIn(up, codec, ref)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != nil {
		corrupt(&w)
	}
	payload, err := transport.Encode(transport.RoundUpload{Round: round, Client: client, HasPayload: true, Payload: w})
	if err != nil {
		t.Fatal(err)
	}
	return payload, up
}

// TestChaosInt8UploadValidation drives collectUploads against int8-coded
// uploads: a bit-flipped quantized section fails the per-section CRC below
// the gob layer with the named comm error, a raw-float64 upload into an int8
// round is a codec mismatch, and a delta-coded section arriving in a round
// without a parameter reference is rejected rather than mis-decoded — in
// every case an error, never a panic or silently-wrong values.
func TestChaosInt8UploadValidation(t *testing.T) {
	env := chaosEnv(t)
	runner, err := engine.Of(chaosFedAvg(t, env))
	if err != nil {
		t.Fatal(err)
	}
	round := runner.BeginRound()
	ref := []float64{0.25, -0.5, 1.5}

	send := func(conn transport.Conn, from int, payload []byte) {
		t.Helper()
		if err := conn.Send(&transport.Envelope{Kind: transport.KindUpload, From: from, To: -1, Round: round, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}

	strictCase := func(name string, wantErr error, ref []float64, payload []byte) {
		t.Run(name, func(t *testing.T) {
			bus := transport.NewBus(3, 6)
			defer bus.Close()
			rx := newReceiver(bus.ServerConn())
			defer rx.stop()
			send(bus.ClientConn(0), 0, payload)
			_, _, roundErr, err := collectUploads(round, runner, rx, []int{0, 1, 2}, fullRegistry(3), &Options{}, comm.CodecInt8, ref, false, &roundStats{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !errors.Is(roundErr, wantErr) {
				t.Fatalf("roundErr = %v, want %v", roundErr, wantErr)
			}
		})
	}

	flipped, _ := int8Upload(t, round, 0, comm.CodecInt8, ref, func(w *transport.WirePayload) {
		w.LogitsEnc[len(w.LogitsEnc)-1] ^= 0x01
	})
	strictCase("strict-bitflip", comm.ErrSectionChecksum, ref, flipped)

	rawUpload, _ := int8Upload(t, round, 0, comm.CodecFloat64, nil, nil)
	strictCase("strict-codec-mismatch", ErrCodecMismatch, ref, rawUpload)

	deltaUpload, _ := int8Upload(t, round, 0, comm.CodecInt8, ref, nil)
	strictCase("strict-delta-without-ref", comm.ErrSectionRef, nil, deltaUpload)

	t.Run("tolerant", func(t *testing.T) {
		bus := transport.NewBus(3, 6)
		defer bus.Close()
		rx := newReceiver(bus.ServerConn())
		defer rx.stop()
		send(bus.ClientConn(0), 0, flipped)   // CRC reject
		send(bus.ClientConn(2), 2, rawUpload) // codec mismatch reject (checked before peer identity)
		clean, orig := int8Upload(t, round, 1, comm.CodecInt8, ref, nil)
		send(bus.ClientConn(1), 1, clean)
		rs := &roundStats{}
		opts := &Options{ClientTimeout: 300 * time.Millisecond}
		uploads, _, roundErr, err := collectUploads(round, runner, rx, []int{0, 1, 2}, fullRegistry(3), opts, comm.CodecInt8, ref, true, rs, nil)
		if err != nil || roundErr != nil {
			t.Fatalf("errs = %v, %v", err, roundErr)
		}
		if got := rs.corrupt.Load(); got != 2 {
			t.Fatalf("corrupt = %d, want 2", got)
		}
		if len(uploads) != 1 || uploads[0].Client != 1 {
			t.Fatalf("uploads = %+v, want exactly client 1", uploads)
		}
		want := orig.ApplyCodec(comm.CodecInt8, ref)
		got := uploads[0].Payload
		if !reflect.DeepEqual(got.Params, want.Params) {
			t.Errorf("decoded params %v, want quantized %v", got.Params, want.Params)
		}
		if !reflect.DeepEqual(got.Logits.Data, want.Logits.Data) {
			t.Errorf("decoded logits diverge from ApplyCodec")
		}
		if !reflect.DeepEqual(got.Protos.Vectors, want.Protos.Vectors) {
			t.Errorf("decoded protos diverge from ApplyCodec")
		}
	})
}

// TestChaosInt8CorruptionRun is the run-level half of the quantized-chaos
// contract: the full tolerant runtime with the int8 wire codec under payload
// corruption completes every round (CRC-failed sections are counted drops,
// never panics or poisoned aggregates), and the same seed reproduces the
// same degraded history.
func TestChaosInt8CorruptionRun(t *testing.T) {
	plan := &faults.Plan{Seed: 31, CorruptProb: 0.3}
	const rounds = 3
	run := func() *fl.History {
		var fs faults.Stats
		env := chaosEnv(t)
		algo := chaosFedPKD(t, env)
		r, err := engine.Of(algo)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.SetCodec(comm.CodecInt8); err != nil {
			t.Fatal(err)
		}
		hist, err := RunAlgorithmOpts(algo, rounds, Options{
			Mode:          ModeBus,
			ClientTimeout: chaosTimeout,
			Faults:        plan,
			FaultStats:    &fs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if fs.Snapshot().Corrupts == 0 {
			t.Fatal("no corruption injected; this plan+seed is known to corrupt payloads")
		}
		return hist
	}
	h1 := run()
	if h1.Len() != rounds {
		t.Fatalf("history rounds = %d, want %d (corrupt int8 payloads must not abort the run)", h1.Len(), rounds)
	}
	h2 := run()
	j1, _ := json.Marshal(h1)
	j2, _ := json.Marshal(h2)
	if string(j1) != string(j2) {
		t.Fatalf("same-seed int8 chaos runs diverged:\n%s\nvs\n%s", j1, j2)
	}
}

// ---- Tree-tier chaos: the fault-tolerant aggregator tier ----

// treeChaosShards and treeChaosRounds shape every tree chaos run: a two-leaf
// tree over four clients (two per shard) served for three rounds.
const (
	treeChaosShards = 2
	treeChaosRounds = 3
)

// treeChaosEnv is chaosEnv widened to four clients so a two-shard tree puts
// two clients behind each leaf.
func treeChaosEnv(t *testing.T) *fl.Env {
	t.Helper()
	spec := dataset.SynthC10(23)
	spec.Noise = 0.6
	env, err := fl.NewEnv(fl.EnvConfig{
		Spec:       spec,
		NumClients: 4,
		TrainSize:  120, TestSize: 60, PublicSize: 45, LocalTestSize: 30,
		Partition: fl.PartitionConfig{Kind: fl.PartitionDirichlet, Alpha: 0.5},
		Seed:      23,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// findLeafCrashPlan searches derived seeds for a leaf-crash plan whose pure
// schedule kills at least two leaves across the run while leaving at least
// one shard-round alive. LeafCrashesAt is a pure function of the plan, so the
// kill schedule is known before any run.
func findLeafCrashPlan(t *testing.T, seed uint64, needRound0 bool) (*faults.Plan, int) {
	t.Helper()
	for s := seed; s < seed+10_000; s++ {
		plan := &faults.Plan{Seed: s, LeafCrashProb: 0.35}
		kills := 0
		for r := 0; r < treeChaosRounds; r++ {
			for l := 0; l < treeChaosShards; l++ {
				if plan.LeafCrashesAt(l, r) {
					kills++
				}
			}
		}
		if kills < 2 || kills >= treeChaosShards*treeChaosRounds {
			continue
		}
		if needRound0 && !plan.LeafCrashesAt(0, 0) && !plan.LeafCrashesAt(1, 0) {
			continue
		}
		return plan, kills
	}
	t.Fatal("no leaf-crash seed found in 10k candidates")
	return nil, 0
}

// tierSink is a stub transport.Conn recording what a WrapTier decorator
// delivers, for pure pre-run probes of a tier plan's draw schedule.
type tierSink struct{ sent []*transport.Envelope }

func (s *tierSink) Send(e *transport.Envelope) error { s.sent = append(s.sent, e); return nil }
func (s *tierSink) Recv() (*transport.Envelope, error) {
	return nil, errors.New("tierSink: recv on probe conn")
}
func (s *tierSink) Close() error { return nil }

// tierProbe replays the exact draw sequence the leaves' sendDigest loop will
// make under plan — one digest per (shard, round), retried on transient
// failures up to the default attempt budget — and reports what fires. Fault
// draws are pure functions of (seed, salt, shard, kind, round, attempt), so
// the probe predicts the real run exactly.
type tierProbe struct {
	sendFails, drops, corrupts, dups int
	// lostRounds[r] counts shards round r loses (dropped, corrupted, or
	// send-fail-exhausted digests); survivors[r] the cleanly delivered ones.
	lostRounds, survivors [treeChaosRounds]int
}

func probeTierPlan(plan *faults.Plan) tierProbe {
	var pr tierProbe
	attempts := faults.Backoff{}.WithDefaults().Attempts
	for shard := 0; shard < treeChaosShards; shard++ {
		var fs faults.Stats
		sink := &tierSink{}
		up := faults.WrapTier(sink, plan, shard, &fs)
		for round := 0; round < treeChaosRounds; round++ {
			payload := []byte("digest-probe-payload-0123456789abcdef")
			env := &transport.Envelope{Kind: transport.KindShardDigest, From: shard, To: -1, Round: round, Payload: payload}
			before := len(sink.sent)
			corruptBefore := fs.Snapshot().TierCorrupts
			for a := 1; ; a++ {
				if err := up.Send(env); err == nil || a >= attempts {
					break
				}
			}
			delivered := len(sink.sent) - before
			corrupted := fs.Snapshot().TierCorrupts - corruptBefore
			if delivered == 0 || corrupted > 0 {
				pr.lostRounds[round]++
			} else {
				pr.survivors[round]++
			}
		}
		sn := fs.Snapshot()
		pr.sendFails += int(sn.TierSendFails)
		pr.drops += int(sn.TierDrops)
		pr.corrupts += int(sn.TierCorrupts)
		pr.dups += int(sn.TierDups)
	}
	return pr
}

// findTierPlan searches derived seeds for a tier plan (built by mk) whose
// probed schedule satisfies ok.
func findTierPlan(t *testing.T, seed uint64, mk func(s uint64) *faults.Plan, ok func(tierProbe) bool) *faults.Plan {
	t.Helper()
	for s := seed; s < seed+10_000; s++ {
		plan := mk(s)
		if ok(probeTierPlan(plan)) {
			return plan
		}
	}
	t.Fatal("no tier-plan seed found in 10k candidates")
	return nil
}

// runTreeChaos runs FedAvg through the two-leaf tree with the given plan and
// returns the history plus the run's tier ledger totals and fault counters.
func runTreeChaos(t *testing.T, mode Mode, plan *faults.Plan, opts Options) (*fl.History, int64, int64, faults.Snapshot) {
	t.Helper()
	var fs faults.Stats
	rec := obs.NewRecorder("FedAvg")
	opts.Mode = mode
	opts.Recorder = rec
	opts.Faults = plan
	opts.FaultStats = &fs
	opts.Topology = Topology{Shards: treeChaosShards}
	hist, err := RunAlgorithmOpts(chaosFedAvg(t, treeChaosEnv(t)), treeChaosRounds, opts)
	if err != nil {
		t.Fatal(err)
	}
	var up, down int64
	for _, tr := range rec.Traces() {
		up += tr.TierUpBytes
		down += tr.TierDownBytes
	}
	return hist, up, down, fs.Snapshot()
}

// TestTreeChaosLeafCrashDeterministicReplay is the tier acceptance scenario
// over the bus: a seeded leaf-crash plan kills at least two leaves across the
// run, every kill takes its whole shard out of the round, the root merges the
// surviving partials and records a degraded round with the lost-shard set —
// and the same seed replays the identical history, per-tier ledger totals,
// and per-round lost-shard sets.
func TestTreeChaosLeafCrashDeterministicReplay(t *testing.T) {
	treeChaosLeafCrashReplay(t, ModeBus)
}

// TestTreeChaosTCPLeafCrashReplay is the same contract over real sockets on
// both tiers.
func TestTreeChaosTCPLeafCrashReplay(t *testing.T) {
	treeChaosLeafCrashReplay(t, ModeTCP)
}

func treeChaosLeafCrashReplay(t *testing.T, mode Mode) {
	plan, kills := findLeafCrashPlan(t, 42, false)
	opts := Options{ClientTimeout: chaosTimeout, LeafTimeout: chaosTimeout}
	h1, up1, down1, sn1 := runTreeChaos(t, mode, plan, opts)
	h2, up2, down2, _ := runTreeChaos(t, mode, plan, opts)
	if int(sn1.LeafCrashes) != kills {
		t.Errorf("leaf crashes executed = %d, want %d scheduled", sn1.LeafCrashes, kills)
	}
	if h1.Len() != treeChaosRounds {
		t.Fatalf("history rounds = %d, want %d (leaf crashes must not abort the run)", h1.Len(), treeChaosRounds)
	}
	if h1.DegradedCount() == 0 {
		t.Fatal("no degraded rounds recorded; this plan is known to kill leaves")
	}
	lost := 0
	for _, d := range h1.Degraded {
		lost += len(d.LostShards)
		for _, sh := range d.LostShards {
			if sh < 0 || sh >= treeChaosShards {
				t.Fatalf("lost shard %d out of range in %+v", sh, d)
			}
		}
	}
	if lost != kills {
		t.Errorf("lost-shard records = %d, want %d (one per kill)", lost, kills)
	}
	j1, _ := json.Marshal(h1)
	j2, _ := json.Marshal(h2)
	if string(j1) != string(j2) {
		t.Fatalf("same-seed leaf-crash runs diverged:\n%s\nvs\n%s", j1, j2)
	}
	if up1 != up2 || down1 != down2 {
		t.Fatalf("tier ledger totals diverged: up %d vs %d, down %d vs %d", up1, up2, down1, down2)
	}
}

// TestTreeChaosDigestCorruptionLosesShard: a corrupted digest cannot be
// merged, so its shard is written off for the round (no deadline burn — the
// corrupt arrival is attributable) and the round degrades deterministically.
func TestTreeChaosDigestCorruptionLosesShard(t *testing.T) {
	plan := findTierPlan(t, 1,
		func(s uint64) *faults.Plan { return &faults.Plan{Seed: s, TierCorruptProb: 0.4} },
		func(pr tierProbe) bool {
			if pr.corrupts == 0 {
				return false
			}
			for r := 0; r < treeChaosRounds; r++ {
				if pr.survivors[r] == 0 {
					return false
				}
			}
			return true
		})
	opts := Options{ClientTimeout: chaosTimeout, LeafTimeout: chaosTimeout}
	h1, _, _, sn := runTreeChaos(t, ModeBus, plan, opts)
	if sn.TierCorrupts == 0 {
		t.Fatal("no tier corruption injected; this plan is known to corrupt digests")
	}
	if h1.DegradedCount() == 0 {
		t.Fatal("corrupt digests must degrade their rounds")
	}
	lostAny := false
	for _, d := range h1.Degraded {
		lostAny = lostAny || len(d.LostShards) > 0
	}
	if !lostAny {
		t.Fatalf("no lost shards recorded: %+v", h1.Degraded)
	}
	h2, _, _, _ := runTreeChaos(t, ModeBus, plan, opts)
	j1, _ := json.Marshal(h1)
	j2, _ := json.Marshal(h2)
	if string(j1) != string(j2) {
		t.Fatalf("same-seed corruption runs diverged:\n%s\nvs\n%s", j1, j2)
	}
}

// TestTreeChaosDuplicateDigestRejected: a duplicated digest is dropped at the
// root (first writer wins) and counted, leaving the history byte-identical to
// an undisturbed tolerant run — duplication is pure noise, never double
// aggregation.
func TestTreeChaosDuplicateDigestRejected(t *testing.T) {
	plan := findTierPlan(t, 1,
		func(s uint64) *faults.Plan { return &faults.Plan{Seed: s, TierDupProb: 0.6} },
		func(pr tierProbe) bool { return pr.dups > 0 })
	opts := Options{ClientTimeout: chaosTimeout, LeafTimeout: chaosTimeout}
	dup, _, _, sn := runTreeChaos(t, ModeBus, plan, opts)
	if sn.TierDups == 0 {
		t.Fatal("no tier duplication injected; this plan is known to duplicate digests")
	}
	clean, _, _, _ := runTreeChaos(t, ModeBus, nil, opts)
	if !reflect.DeepEqual(dup, clean) {
		t.Fatalf("duplicated digests changed the history:\n%+v\nvs\n%+v", dup, clean)
	}
	if dup.DegradedCount() != 0 {
		t.Fatalf("duplication alone degraded rounds: %+v", dup.Degraded)
	}
}

// TestTreeChaosSendFailRetriesRecover: transient tier send failures are
// retried on the leaves' seeded backoff, so a plan that never exhausts the
// attempt budget leaves the history byte-identical to an undisturbed run.
func TestTreeChaosSendFailRetriesRecover(t *testing.T) {
	plan := findTierPlan(t, 1,
		func(s uint64) *faults.Plan { return &faults.Plan{Seed: s, TierSendFailProb: 0.4} },
		func(pr tierProbe) bool {
			var lost int
			for r := 0; r < treeChaosRounds; r++ {
				lost += pr.lostRounds[r]
			}
			return pr.sendFails > 0 && lost == 0
		})
	opts := Options{ClientTimeout: chaosTimeout, LeafTimeout: chaosTimeout}
	flaky, _, _, sn := runTreeChaos(t, ModeBus, plan, opts)
	if sn.TierSendFails == 0 {
		t.Fatal("no tier send failures injected; this plan is known to inject them")
	}
	clean, _, _, _ := runTreeChaos(t, ModeBus, nil, opts)
	if !reflect.DeepEqual(flaky, clean) {
		t.Fatalf("retried send failures changed the history:\n%+v\nvs\n%+v", flaky, clean)
	}
}

// TestTreeChaosDigestDropTimesOutShard: a dropped digest is invisible until
// the root's LeafTimeout expires, after which the shard is lost to a leaf
// timeout and the round degrades — the only tier fault that must burn the
// deadline, because nothing attributable ever arrives.
func TestTreeChaosDigestDropTimesOutShard(t *testing.T) {
	plan := findTierPlan(t, 1,
		func(s uint64) *faults.Plan { return &faults.Plan{Seed: s, TierDropProb: 0.25} },
		func(pr tierProbe) bool {
			var lost int
			for r := 0; r < treeChaosRounds; r++ {
				if pr.survivors[r] == 0 {
					return false
				}
				lost += pr.lostRounds[r]
			}
			return pr.drops == 1 && lost == 1 // exactly one burn keeps the test fast
		})
	rec := obs.NewRecorder("FedAvg")
	var fs faults.Stats
	hist, err := RunAlgorithmOpts(chaosFedAvg(t, treeChaosEnv(t)), treeChaosRounds, Options{
		Mode:          ModeBus,
		Recorder:      rec,
		ClientTimeout: chaosTimeout,
		LeafTimeout:   500 * time.Millisecond,
		Faults:        plan,
		FaultStats:    &fs,
		Topology:      Topology{Shards: treeChaosShards},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Snapshot().TierDrops != 1 {
		t.Fatalf("tier drops = %d, want 1", fs.Snapshot().TierDrops)
	}
	if hist.DegradedCount() != 1 || len(hist.Degraded[0].LostShards) != 1 {
		t.Fatalf("degraded = %+v, want one round losing one shard", hist.Degraded)
	}
	timeouts := 0
	for _, tr := range rec.Traces() {
		if tr.Robustness != nil {
			timeouts += tr.Robustness.LeafTimeouts
		}
	}
	if timeouts != 1 {
		t.Fatalf("leaf timeouts recorded = %d, want 1", timeouts)
	}
}

// TestTreeChaosShardQuorumAbort drives both halves of the shard quorum: the
// pre-round check fails fast on a round the crash schedule already dooms
// (before any fan-out, so no deadline burns), and the post-collect check
// aborts a round whose merged digest count fell below quorum.
func TestTreeChaosShardQuorumAbort(t *testing.T) {
	t.Run("pre-round fail-fast", func(t *testing.T) {
		plan, _ := findLeafCrashPlan(t, 42, true) // a leaf dies in round 0
		hist, err := RunAlgorithmOpts(chaosFedAvg(t, treeChaosEnv(t)), treeChaosRounds, Options{
			Mode:          ModeBus,
			ClientTimeout: chaosTimeout,
			LeafTimeout:   chaosTimeout,
			ShardQuorum:   treeChaosShards,
			Faults:        plan,
			Topology:      Topology{Shards: treeChaosShards},
		})
		if !errors.Is(err, ErrShardQuorumNotMet) {
			t.Fatalf("err = %v, want ErrShardQuorumNotMet", err)
		}
		if hist.Len() != 0 {
			t.Fatalf("history has %d rounds; the doomed round must abort before running", hist.Len())
		}
	})
	t.Run("post-collect abort", func(t *testing.T) {
		// A plan probed to corrupt round 0's every digest: the round merges
		// zero shards, under quorum.
		plan := findTierPlan(t, 1,
			func(s uint64) *faults.Plan { return &faults.Plan{Seed: s, TierCorruptProb: 0.999} },
			func(pr tierProbe) bool { return pr.survivors[0] == 0 })
		_, err := RunAlgorithmOpts(chaosFedAvg(t, treeChaosEnv(t)), treeChaosRounds, Options{
			Mode:          ModeBus,
			ClientTimeout: chaosTimeout,
			LeafTimeout:   chaosTimeout,
			ShardQuorum:   1,
			Faults:        plan,
			Topology:      Topology{Shards: treeChaosShards},
		})
		if !errors.Is(err, ErrShardQuorumNotMet) {
			t.Fatalf("err = %v, want ErrShardQuorumNotMet", err)
		}
	})
}

// TestTreeChaosZeroPlanTolerantMatchesStrict pins the tier degradation-free
// contract: arming the tolerant tier machinery (a finite LeafTimeout) with no
// fault plan must not change a byte of the tree history.
func TestTreeChaosZeroPlanTolerantMatchesStrict(t *testing.T) {
	tolerant, err := RunAlgorithmOpts(chaosFedAvg(t, treeChaosEnv(t)), treeChaosRounds, Options{
		Mode:        ModeBus,
		LeafTimeout: 10 * time.Second,
		Topology:    Topology{Shards: treeChaosShards},
	})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := RunAlgorithmOpts(chaosFedAvg(t, treeChaosEnv(t)), treeChaosRounds, Options{
		Mode:     ModeBus,
		Topology: Topology{Shards: treeChaosShards},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tolerant, strict) {
		t.Fatalf("tolerant-but-healthy tree diverged from the strict tree:\n%+v\nvs\n%+v", tolerant, strict)
	}
	if tolerant.DegradedCount() != 0 {
		t.Fatalf("healthy tree recorded degraded rounds: %+v", tolerant.Degraded)
	}
}

// TestTreeChaosClientCrashUnderTreeTCPReplay: client-plane chaos composes
// with the tree over TCP — crashed clients redial through the join handshake
// beneath their leaf, rounds degrade, and the same seed replays the identical
// history.
func TestTreeChaosClientCrashUnderTreeTCPReplay(t *testing.T) {
	plan := &faults.Plan{Seed: 7, CrashProb: 0.3}
	run := func() *fl.History {
		var fs faults.Stats
		hist, err := RunAlgorithmOpts(chaosFedAvg(t, treeChaosEnv(t)), treeChaosRounds, Options{
			Mode:          ModeTCP,
			ClientTimeout: chaosTimeout,
			Faults:        plan,
			FaultStats:    &fs,
			Topology:      Topology{Shards: treeChaosShards},
		})
		if err != nil {
			t.Fatal(err)
		}
		if fs.Snapshot().Crashes == 0 {
			t.Fatal("no crashes injected; this plan+seed is known to crash clients")
		}
		return hist
	}
	h1 := run()
	if h1.DegradedCount() == 0 {
		t.Fatal("crashed rounds must be recorded as degraded")
	}
	h2 := run()
	j1, _ := json.Marshal(h1)
	j2, _ := json.Marshal(h2)
	if string(j1) != string(j2) {
		t.Fatalf("same-seed client-crash tree runs diverged:\n%s\nvs\n%s", j1, j2)
	}
}

// TestTreeChaosGoroutineLeakFree extends the leak contract to the tree: a
// finished tree run over TCP, and a run whose upper fabric dies mid-service
// (every leaf loses the root at once), must both unwind every goroutine —
// demux, leaf workers, receiver pumps, and both fabrics' plumbing.
func TestTreeChaosGoroutineLeakFree(t *testing.T) {
	settle := func(before int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			now := runtime.NumGoroutine()
			if now <= before+2 { // small slack for runtime background goroutines
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("goroutines: %d before run, %d five seconds after", before, now)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	t.Run("clean tree run", func(t *testing.T) {
		before := runtime.NumGoroutine()
		_, err := RunAlgorithmOpts(chaosFedAvg(t, treeChaosEnv(t)), 2, Options{
			Mode:     ModeTCP,
			Topology: Topology{Shards: treeChaosShards},
		})
		if err != nil {
			t.Fatal(err)
		}
		settle(before)
	})
	t.Run("leaf death mid-service", func(t *testing.T) {
		before := runtime.NumGoroutine()
		var svc *Service
		svc, err := NewService(chaosFedAvg(t, treeChaosEnv(t)), Options{
			Mode:        ModeBus,
			LeafTimeout: chaosTimeout,
			Topology:    Topology{Shards: treeChaosShards},
			Barrier: func(round int) error {
				if round == 1 {
					// Kill the leaf↔root fabric under a live service: every
					// leaf's next tier receive fails as a dead link would.
					svc.tree.upper.cleanup()
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Run(treeChaosRounds); err == nil {
			t.Fatal("a run whose upper fabric died should fail")
		}
		svc.Close()
		settle(before)
	})
}

// TestTreeChaosOptionsValidation pins the tier option surface: tier knobs
// and tier plans require the tree, lossy tier plans require a digest
// deadline, and the quorum is bounded by the shard count.
func TestTreeChaosOptionsValidation(t *testing.T) {
	env := treeChaosEnv(t)
	tree := Topology{Shards: treeChaosShards}
	cases := []struct {
		name string
		opts Options
	}{
		{"LeafTimeout without tree", Options{LeafTimeout: time.Second}},
		{"ShardQuorum without tree", Options{ShardQuorum: 1}},
		{"tier plan without tree", Options{Faults: &faults.Plan{TierDropProb: 0.1}, ClientTimeout: time.Second}},
		{"negative LeafTimeout", Options{LeafTimeout: -time.Second, Topology: tree}},
		{"lossy tier plan without LeafTimeout", Options{Faults: &faults.Plan{TierDropProb: 0.1}, Topology: tree}},
		{"ShardQuorum above shard count", Options{ShardQuorum: treeChaosShards + 1, LeafTimeout: time.Second, Topology: tree}},
		{"out-of-range tier probability", Options{Faults: &faults.Plan{TierDupProb: 1.5}, LeafTimeout: time.Second, Topology: tree}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.opts.Mode = ModeBus
			if _, err := RunAlgorithmOpts(chaosFedAvg(t, env), 1, tc.opts); err == nil {
				t.Errorf("%s should be rejected", tc.name)
			}
		})
	}
}
