// Package distrib runs any engine-backed algorithm as communicating
// processes: the server and every client execute in their own goroutine and
// exchange knowledge exclusively through the transport layer (in-memory bus
// or real TCP), exercising the same wire protocol a multi-host deployment
// would use. The round skeleton mirrors internal/fl/engine — RoundStart
// carries the front-loaded global state, RoundUpload the local updates,
// RoundEnd the aggregation broadcast — so the phase hooks an algorithm wrote
// for the in-process engine drive the distributed run unchanged. The ledger
// records the actual encoded wire bytes rather than the analytic sizes of
// internal/comm, so traffic totals differ from in-process runs while the
// accuracy trajectory is bit-identical (payload values travel as float64).
//
// # Failure model
//
// By default the runtime is strict: any protocol violation, lost message, or
// dead peer aborts the run, which is the right behavior for debugging and
// for the determinism goldens. Options turns on the failure-tolerant mode:
// a positive ClientTimeout bounds how long the server waits for uploads each
// round (stragglers and crashed clients are simply left out of the
// aggregate), a faults.Plan injects deterministic chaos beneath the
// protocol, MinQuorum aborts rounds that heard from too few clients, and
// Retry gives clients bounded exponential backoff on transient send
// failures. Partial rounds are recorded in fl.History.Degraded and in the
// per-round obs Robustness trace, so degradation is measurable rather than
// silent. Because every fault draw is a pure function of the plan seed and
// the message coordinates, two tolerant runs with the same seed accept the
// same uploads in the same rounds and produce identical histories.
package distrib

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fedpkd/internal/comm"
	"fedpkd/internal/core"
	"fedpkd/internal/faults"
	"fedpkd/internal/fl"
	"fedpkd/internal/fl/engine"
	"fedpkd/internal/obs"
	"fedpkd/internal/stats"
	"fedpkd/internal/transport"
)

// Protocol-violation errors. Strict mode returns them (wrapped with
// context); tolerant mode counts the offending envelope in the round's
// Robustness trace and drops it.
var (
	// ErrStaleEnvelope marks a message stamped with a round other than the
	// one in flight — a late upload from a past round, or leftover traffic a
	// restarted client finds on its connection.
	ErrStaleEnvelope = errors.New("distrib: stale envelope")
	// ErrPeerMismatch marks an envelope whose From/To addressing does not
	// match the connection it arrived on.
	ErrPeerMismatch = errors.New("distrib: peer mismatch")
	// ErrDuplicateUpload marks a second upload from a client that already
	// contributed this round (the transport-duplication dedup).
	ErrDuplicateUpload = errors.New("distrib: duplicate upload")
	// ErrQuorumNotMet aborts a round that collected fewer uploads than
	// Options.MinQuorum.
	ErrQuorumNotMet = errors.New("distrib: quorum not met")
	// ErrShardQuorumNotMet aborts a tree round whose root merged fewer
	// surviving shard digests than Options.ShardQuorum.
	ErrShardQuorumNotMet = errors.New("distrib: shard quorum not met")
	// ErrCodecMismatch marks an upload encoded under a codec other than the
	// one the round's RoundStart negotiated.
	ErrCodecMismatch = errors.New("distrib: upload codec mismatch")
)

// Mode selects the wire.
type Mode string

// Supported modes.
const (
	// ModeBus uses the in-memory transport.
	ModeBus Mode = "bus"
	// ModeTCP uses loopback TCP connections.
	ModeTCP Mode = "tcp"
)

// Config parameterizes a distributed FedPKD run, kept for the original
// FedPKD-only entry point. The algorithm knobs are core.Config's; Mode
// selects the transport.
type Config struct {
	Core core.Config
	Mode Mode
	// Recorder, when non-nil, receives per-round spans and wire-byte
	// counters; it is attached to the run's ledger as a comm.Observer.
	Recorder *obs.Recorder
}

// Options parameterizes a distributed run of any engine-backed algorithm.
// The zero value (plus a Mode) reproduces the strict runtime.
type Options struct {
	// Mode selects the transport; empty means ModeBus.
	Mode Mode
	// Recorder, when non-nil, receives per-round spans, wire-byte counters,
	// and the Robustness trace.
	Recorder *obs.Recorder
	// ClientTimeout bounds how long the server waits for the round's
	// uploads. Zero waits forever (strict mode). When positive, clients
	// that miss the deadline are left out of the aggregate and the round
	// completes with a partial cohort.
	ClientTimeout time.Duration
	// MinQuorum is the minimum number of uploads a round must aggregate;
	// fewer aborts the round with ErrQuorumNotMet. Zero disables the check
	// (a round that heard from nobody skips aggregation, matching the
	// engine's dropout semantics).
	MinQuorum int
	// Faults, when non-nil and enabled, injects deterministic chaos on
	// every client connection. Lossy plans require a positive
	// ClientTimeout.
	Faults *faults.Plan
	// Retry configures the clients' upload backoff on transient send
	// failures; zero fields take the faults.Backoff defaults.
	Retry faults.Backoff
	// FaultStats, when non-nil, accumulates the run's injected-fault
	// counters for the caller to inspect.
	FaultStats *faults.Stats
	// Population lists the client ids registered before the first round; nil
	// registers the whole fleet up front (the legacy fixed-cohort behavior).
	// Clients outside the initial population may still register mid-run via
	// hello envelopes — their workers park until a round schedules them.
	Population []int
	// WireRegistration makes the initial population register through real
	// hello envelopes instead of being pre-seeded into the registry: the
	// service starts with nobody registered and blocks until every
	// Population member's hello arrives, the path `serve` mode uses so that
	// registration is observable wire traffic.
	WireRegistration bool
	// Barrier, when non-nil, runs at every round barrier before the round
	// opens — the control plane's pause/save/quit hook. All workers are
	// parked while it runs, so it may checkpoint safely; a returned error
	// stops the run with that error.
	Barrier func(round int) error
	// OnService, when non-nil, receives the run's Service handle before the
	// first round, giving the caller live status and the Join/Leave
	// registration API.
	OnService func(*Service)
	// Topology, when enabled (Shards > 1), runs the round over a two-tier
	// aggregator tree: leaf aggregators own contiguous client id shards and
	// the root merges shard digests only. The client-plane protocol, history,
	// and ledger totals are byte-identical to the flat runtime; the tree's
	// leaf↔root backhaul is billed separately in the tier columns.
	Topology Topology
	// LeafTimeout bounds how long the root waits for each round's shard
	// digests. Zero waits forever (strict tree mode). When positive, shards
	// whose digest misses the deadline are marked lost and the round
	// aggregates the surviving partials — the tier-plane analog of
	// ClientTimeout. Tree mode only; lossy tier fault plans require it.
	LeafTimeout time.Duration
	// ShardQuorum is the minimum number of shard digests a tree round must
	// merge; fewer aborts the round with ErrShardQuorumNotMet. Zero disables
	// the check (a round that lost every shard skips aggregation, like a
	// round that heard from nobody).
	ShardQuorum int
}

func (o *Options) validate(n int) error {
	if err := o.Faults.Validate(); err != nil {
		return err
	}
	if o.Faults.Lossy() && o.ClientTimeout <= 0 {
		return fmt.Errorf("distrib: fault plan [%v] can lose messages or clients; set a positive ClientTimeout so the server does not wait forever", o.Faults)
	}
	if o.MinQuorum < 0 || o.MinQuorum > n {
		return fmt.Errorf("distrib: MinQuorum %d out of range [0,%d]", o.MinQuorum, n)
	}
	if err := o.Topology.validate(n); err != nil {
		return err
	}
	if o.Topology.Enabled() && o.WireRegistration {
		return fmt.Errorf("distrib: WireRegistration is not supported with an aggregator tree: wire registration reads the fan-in socket the tree's demultiplexer owns")
	}
	if o.LeafTimeout < 0 {
		return fmt.Errorf("distrib: LeafTimeout must be >= 0, got %v", o.LeafTimeout)
	}
	if !o.Topology.Enabled() {
		if o.LeafTimeout > 0 {
			return fmt.Errorf("distrib: LeafTimeout requires an aggregator tree (Topology.Shards > 1)")
		}
		if o.ShardQuorum > 0 {
			return fmt.Errorf("distrib: ShardQuorum requires an aggregator tree (Topology.Shards > 1)")
		}
		if o.Faults.TierEnabled() {
			return fmt.Errorf("distrib: fault plan [%v] targets the aggregator tier but no tree is configured (Topology.Shards > 1)", o.Faults)
		}
	} else {
		if o.ShardQuorum < 0 || o.ShardQuorum > o.Topology.Shards {
			return fmt.Errorf("distrib: ShardQuorum %d out of range [0,%d]", o.ShardQuorum, o.Topology.Shards)
		}
		if o.Faults.TierLossy() && o.LeafTimeout <= 0 {
			return fmt.Errorf("distrib: fault plan [%v] can lose shard digests or leaves; set a positive LeafTimeout so the root does not wait forever", o.Faults)
		}
	}
	seen := make(map[int]bool, len(o.Population))
	for _, id := range o.Population {
		if id < 0 || id >= n {
			return fmt.Errorf("distrib: population id %d out of range [0,%d)", id, n)
		}
		if seen[id] {
			return fmt.Errorf("distrib: duplicate population id %d", id)
		}
		seen[id] = true
	}
	return nil
}

// Run executes rounds of FedPKD over the transport and returns the history.
// It is a convenience wrapper over RunAlgorithm for the paper's main
// algorithm.
func Run(cfg Config, rounds int) (*fl.History, error) {
	if cfg.Core.Env == nil {
		return nil, fmt.Errorf("distrib: Core.Env is required")
	}
	f, err := core.New(cfg.Core)
	if err != nil {
		return nil, err
	}
	return RunAlgorithm(f, cfg.Mode, rounds, cfg.Recorder)
}

// RunAlgorithm executes rounds additional rounds of any engine-backed
// algorithm over the transport with the strict failure model. It is
// RunAlgorithmOpts with only Mode and Recorder set.
func RunAlgorithm(algo fl.Algorithm, mode Mode, rounds int, rec *obs.Recorder) (*fl.History, error) {
	return RunAlgorithmOpts(algo, rounds, Options{Mode: mode, Recorder: rec})
}

// RunAlgorithmUntil runs over the transport until the run has completed
// total rounds — the resume-aware entry point mirroring
// engine.Runner.RunUntil: after restoring a round-5 checkpoint,
// RunAlgorithmUntil(algo, mode, 10, rec) runs exactly the 5 remaining
// rounds.
func RunAlgorithmUntil(algo fl.Algorithm, mode Mode, total int, rec *obs.Recorder) (*fl.History, error) {
	return RunAlgorithmUntilOpts(algo, total, Options{Mode: mode, Recorder: rec})
}

// RunAlgorithmUntilOpts is RunAlgorithmUntil with the full option set.
func RunAlgorithmUntilOpts(algo fl.Algorithm, total int, opts Options) (*fl.History, error) {
	runner, err := engine.Of(algo)
	if err != nil {
		return nil, err
	}
	if total < runner.CurrentRound() {
		return nil, fmt.Errorf("distrib: RunAlgorithmUntil(%d) but %d rounds already completed", total, runner.CurrentRound())
	}
	return RunAlgorithmOpts(algo, total-runner.CurrentRound(), opts)
}

// RunAlgorithmOpts executes rounds additional rounds of any engine-backed
// algorithm over the transport and returns the cumulative history. All model
// state lives in the worker goroutines during a round; evaluation (and, when
// a checkpoint policy is set on the runner, the durable checkpoint write)
// happens at round barriers when every worker is parked. The distributed
// runner always uses full participation: ClientFraction and ClientDropProb
// apply to the in-process engine only — here the cohort shrinks through the
// failure model instead (timeouts, injected faults).
//
// Resume: restore the algorithm first (engine.Runner.ResumeAny) and the run
// continues from the checkpointed round — the server-side checkpoint holds
// every client's model and optimizer state, which the restored hooks carry
// back into the worker goroutines exactly as a real deployment would re-seed
// clients from the next RoundStart.
func RunAlgorithmOpts(algo fl.Algorithm, rounds int, opts Options) (*fl.History, error) {
	s, err := NewService(algo, opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if opts.OnService != nil {
		opts.OnService(s)
	}
	return s.Run(rounds)
}

// roundStats accumulates one round's protocol-hygiene counters across the
// server and client goroutines.
type roundStats struct {
	stale   atomic.Int64
	dup     atomic.Int64
	corrupt atomic.Int64
	retries atomic.Int64
	unknown atomic.Int64
	// Tier-plane counters: digests the root gave up waiting for, leaf-side
	// digest send retries, and duplicate digests the root rejected.
	leafTimeouts  atomic.Int64
	digestRetries atomic.Int64
	digestDups    atomic.Int64
}

func (rs *roundStats) reset() {
	rs.stale.Store(0)
	rs.dup.Store(0)
	rs.corrupt.Store(0)
	rs.retries.Store(0)
	rs.unknown.Store(0)
	rs.leafTimeouts.Store(0)
	rs.digestRetries.Store(0)
	rs.digestDups.Store(0)
}

// recordRobustness folds one tolerant round's failure profile into the
// cumulative history (partial cohorts only) and the obs trace (always, so
// healthy chaos rounds are visible too).
func recordRobustness(t, expected int, runner *engine.Runner, rec *obs.Recorder, opts *Options, rp *roundReport, rs *roundStats, injected int64) {
	var crashed, timedOut []int
	n := runner.Config().Env.Cfg.NumClients
	inLost := make(map[int]bool, len(rp.lostShards))
	for _, sh := range rp.lostShards {
		inLost[sh] = true
	}
	for _, c := range rp.missing {
		switch {
		case opts.Faults.CrashesAt(c, t):
			crashed = append(crashed, c)
		case opts.Topology.Enabled() && inLost[ShardOf(c, n, opts.Topology.Shards)]:
			// Lost with its whole shard: the per-shard detail in LostShards
			// already accounts for it, so neither client list repeats it.
		default:
			timedOut = append(timedOut, c)
		}
	}
	if rp.cohort < expected || len(rp.lostShards) > 0 {
		runner.RecordDegraded(fl.DegradedRound{Round: t, Cohort: rp.cohort, Expected: expected, Missing: rp.missing, LostShards: rp.lostShards})
	}
	rec.SetRobustness(obs.Robustness{
		Cohort:         rp.cohort,
		Expected:       expected,
		TimedOut:       timedOut,
		Crashed:        crashed,
		StaleDropped:   int(rs.stale.Load()),
		DupDropped:     int(rs.dup.Load()),
		CorruptDropped: int(rs.corrupt.Load()),
		UnknownDropped: int(rs.unknown.Load()),
		Retries:        int(rs.retries.Load()),
		LeafTimeouts:   int(rs.leafTimeouts.Load()),
		DigestRetries:  int(rs.digestRetries.Load()),
		DigestDups:     int(rs.digestDups.Load()),
		ShardsLost:     rp.lostShards,
		FaultsInjected: injected,
	})
}

// roundReport summarizes who the server heard from in one round.
type roundReport struct {
	// cohort is the number of distinct clients whose uploads arrived in
	// time; missing lists the rest, sorted ascending.
	cohort  int
	missing []int
	// lostShards lists the shards whose digest never made it into the
	// round's merge (crashed leaf, late/corrupt digest), sorted ascending.
	// Tree rounds only.
	lostShards []int
}

// serverRound runs the server side of one round: fan out RoundStart to the
// round's cohort, collect uploads (all of them in strict mode, whatever
// beats the deadline in tolerant mode), aggregate, fan out RoundEnd. A
// client-reported error aborts the round but still produces a RoundEnd so no
// peer blocks forever.
//
// Round framing is billed for every cohort member regardless of delivery —
// billing driven by Send outcomes would make traffic totals depend on crash
// timing, breaking the same-seed-same-history guarantee.
func serverRound(t int, runner *engine.Runner, conn transport.Conn, rx *receiver, cohort []int, reg *Registry, opts *Options, tolerant bool, rs *roundStats) (*roundReport, error) {
	hooks := runner.Hooks()
	ledger := runner.Ledger()
	rc := runner.Context(t)

	codec := runner.Codec()
	coded := codec != comm.CodecFloat64
	global, refParams := roundGlobal(t, runner)
	payload, hasGlobal, startRaw, err := encodeRoundStart(t, codec, global)
	if err != nil {
		return nil, err
	}
	for _, c := range cohort {
		e := &transport.Envelope{Kind: transport.KindRoundStart, From: -1, To: c, Round: t, Payload: payload}
		sendErr := conn.Send(e)
		billFraming(ledger, hasGlobal, coded, e.WireSize(), startRaw)
		if sendErr != nil && !tolerant {
			return nil, sendErr
		}
	}

	uploads, report, roundErr, err := collectUploads(t, runner, rx, cohort, reg, opts, codec, refParams, tolerant, rs, nil)
	if err != nil {
		return report, err
	}
	if roundErr == nil && opts.MinQuorum > 0 && len(uploads) < opts.MinQuorum {
		roundErr = fmt.Errorf("%w: round %d aggregated %d of %d required uploads", ErrQuorumNotMet, t, len(uploads), opts.MinQuorum)
	}

	var bcast *engine.Payload
	if roundErr == nil && len(uploads) > 0 {
		// Aggregate sees uploads sorted by client id, exactly like the
		// in-process engine, so reductions are order-stable regardless of
		// which goroutine finished first.
		sort.Slice(uploads, func(i, j int) bool { return uploads[i].Client < uploads[j].Client })
		bcast, roundErr = hooks.Aggregate(rc, uploads)
	}

	payload, hasBroadcast, endRaw, roundErr, fatal := buildRoundEnd(t, codec, bcast, roundErr)
	if fatal != nil {
		return report, fatal
	}
	for _, c := range cohort {
		e := &transport.Envelope{Kind: transport.KindRoundEnd, From: -1, To: c, Round: t, Payload: payload}
		sendErr := conn.Send(e)
		billFraming(ledger, hasBroadcast, coded, e.WireSize(), endRaw)
		if sendErr != nil && !tolerant && roundErr == nil {
			return report, sendErr
		}
	}
	return report, roundErr
}

// roundGlobal returns round t's front-loaded global with the active codec
// applied, plus the delta reference cohort uploads decode against. Clients
// see decode(encode(global)); the server must hold the same bits so both
// sides agree on the reference and the distributed run stays bit-identical
// to the in-process engine.
func roundGlobal(t int, runner *engine.Runner) (global *engine.Payload, refParams []float64) {
	codec := runner.Codec()
	global = runner.Hooks().GlobalState(t)
	if codec != comm.CodecFloat64 && global != nil {
		global = global.ApplyCodec(codec, nil)
		refParams = global.Params
	}
	return global, refParams
}

// encodeRoundStart encodes one round-opening message carrying global (which
// must already be codec-applied) and prices its raw-equivalent billing size
// under a compressing codec. The flat server fans the result to the whole
// cohort; a leaf aggregator fans the same bytes to its shard.
func encodeRoundStart(t int, codec comm.Codec, global *engine.Payload) (payload []byte, hasGlobal bool, startRaw int, err error) {
	gw, err := transport.PayloadToWireIn(global, codec, nil)
	if err != nil {
		return nil, false, 0, err
	}
	msg := transport.RoundStart{Round: t, HasGlobal: global != nil, Global: gw, Codec: uint8(codec)}
	payload, err = transport.Encode(msg)
	if err != nil {
		return nil, false, 0, err
	}
	if codec != comm.CodecFloat64 && msg.HasGlobal {
		startRaw = rawWireSize(
			transport.RoundStart{Round: t, HasGlobal: true, Global: transport.PayloadToWire(global)},
			(&transport.Envelope{Payload: payload}).WireSize())
	}
	return payload, msg.HasGlobal, startRaw, nil
}

// buildRoundEnd encodes one round-close message from an aggregation outcome:
// the broadcast when the round succeeded, the error text when it did not
// (broadcasts are never delta-coded — receivers that missed RoundStart must
// still decode them ref-free). Encode failures fold into the returned
// roundErr; a non-nil fatal aborts the round with no close message, matching
// the flat server's historical behavior.
func buildRoundEnd(t int, codec comm.Codec, bcast *engine.Payload, roundErr error) (payload []byte, hasBroadcast bool, endRaw int, outRoundErr, fatal error) {
	re := transport.RoundEnd{Round: t, Codec: uint8(codec)}
	if roundErr == nil && bcast != nil {
		bw, werr := transport.PayloadToWireIn(bcast, codec, nil)
		if werr != nil {
			roundErr = werr
		} else {
			re.HasBroadcast = true
			re.Broadcast = bw
		}
	}
	if roundErr != nil {
		re.HasBroadcast = false
		re.Broadcast = transport.WirePayload{}
		re.Err = roundErr.Error()
	}
	payload, err := transport.Encode(re)
	if err != nil {
		if roundErr != nil {
			return nil, false, 0, roundErr, roundErr
		}
		return nil, false, 0, nil, err
	}
	if codec != comm.CodecFloat64 && re.HasBroadcast {
		endRaw = rawWireSize(
			transport.RoundEnd{Round: t, HasBroadcast: true, Broadcast: transport.PayloadToWire(bcast)},
			(&transport.Envelope{Payload: payload}).WireSize())
	}
	return payload, re.HasBroadcast, endRaw, roundErr, nil
}

// billFraming bills one round-framing envelope exactly as the flat server
// does: control traffic when it carries no knowledge, a wire/raw pair under
// a compressing codec, a plain download otherwise. Leaves reuse it so a tree
// run's client-plane ledger stays byte-identical to the flat run's.
func billFraming(ledger *comm.Ledger, hasPayload, coded bool, wire, raw int) {
	switch {
	case !hasPayload:
		ledger.AddControl(wire)
	case coded:
		ledger.AddDownloadRaw(wire, raw)
	default:
		ledger.AddDownload(wire)
	}
}

// rawWireSize returns the envelope wire size msg would occupy encoded as-is —
// used to price the float64raw equivalent of a codec-compressed message into
// the ledger's informational raw columns. Best effort: an encode failure
// falls back to the given compressed size so raw totals never undercount the
// wire.
func rawWireSize(msg any, fallback int) int {
	b, err := transport.Encode(msg)
	if err != nil {
		return fallback
	}
	return (&transport.Envelope{Payload: b}).WireSize()
}

// collectUploads drains the server inbox until every awaited cohort member
// has contributed, the deadline passes (tolerant), or a protocol violation
// is found (strict). roundErr is a protocol-level failure that still gets a
// RoundEnd; err is a transport-level failure that aborts the run.
//
// Clients the shared fault schedule crashes this round are not awaited at
// all — the deterministic equivalent of a failure detector, so a
// crash-heavy round does not have to burn the whole deadline.
//
// Registration traffic flows through here too: hello/goodbye envelopes
// arriving mid-round are queued into the registry (applied at the next
// barrier) and billed as control bytes. Uploads from peers the registry does
// not know surface ErrUnknownClient; uploads from registered peers outside
// this round's cohort (offline per the availability trace) are stale.
//
// sink, when non-nil, streams each surviving upload out instead of retaining
// it (the returned uploads slice stays empty) — the compact tree reduction,
// where a leaf folds uploads as they arrive and holds no per-client state. A
// sink failure is an algorithm-level error and aborts the round like a
// client-reported hook failure.
func collectUploads(t int, runner *engine.Runner, rx *receiver, cohort []int, reg *Registry, opts *Options, codec comm.Codec, refParams []float64, tolerant bool, rs *roundStats, sink func(engine.Upload) error) (uploads []engine.Upload, report *roundReport, roundErr, err error) {
	ledger := runner.Ledger()
	n := runner.Config().Env.Cfg.NumClients
	uploads = make([]engine.Upload, 0, len(cohort))
	seen := make(map[int]bool, len(cohort))
	inCohort := make(map[int]bool, len(cohort))
	await := 0
	for _, c := range cohort {
		inCohort[c] = true
		if !opts.Faults.CrashesAt(c, t) {
			await++
		}
	}
	var deadline time.Time
	if opts.ClientTimeout > 0 {
		deadline = time.Now().Add(opts.ClientTimeout)
	}
	for await > 0 && roundErr == nil {
		wait := time.Duration(0)
		if !deadline.IsZero() {
			wait = time.Until(deadline)
			if wait <= 0 {
				break
			}
		}
		e, rerr := rx.recv(wait)
		if errors.Is(rerr, errRecvTimeout) {
			break
		}
		var gone *peerGoneError
		if errors.As(rerr, &gone) && tolerant {
			// A dead connection is not a dead client: a crash-restarting
			// peer redials and its upload (if any) arrives on the new conn.
			continue
		}
		if rerr != nil {
			return nil, report, nil, fmt.Errorf("server recv: %w", rerr)
		}
		if e.Kind == transport.KindHello || e.Kind == transport.KindGoodbye {
			// Registration is legitimate mid-round traffic in both modes:
			// queue it for the next barrier and account the bytes.
			if e.Kind == transport.KindHello {
				reg.QueueJoin(e.From)
			} else {
				reg.QueueLeave(e.From)
			}
			ledger.AddControl(e.WireSize())
			continue
		}
		if e.Kind != transport.KindUpload {
			if tolerant {
				rs.stale.Add(1)
				continue
			}
			roundErr = fmt.Errorf("distrib: unexpected message kind %v", e.Kind)
			continue
		}
		if e.Round != t {
			if tolerant {
				rs.stale.Add(1)
				continue
			}
			roundErr = fmt.Errorf("%w: upload for round %d during round %d", ErrStaleEnvelope, e.Round, t)
			continue
		}
		if e.From < 0 || e.From >= n {
			if tolerant {
				rs.stale.Add(1)
				continue
			}
			roundErr = fmt.Errorf("%w: upload from unknown peer %d", ErrPeerMismatch, e.From)
			continue
		}
		if !reg.Has(e.From) {
			if tolerant {
				rs.unknown.Add(1)
				continue
			}
			roundErr = fmt.Errorf("%w: upload from unregistered peer %d in round %d", ErrUnknownClient, e.From, t)
			continue
		}
		var ru transport.RoundUpload
		if derr := transport.Decode(e.Payload, &ru); derr != nil {
			if tolerant {
				rs.corrupt.Add(1)
				continue
			}
			roundErr = derr
			continue
		}
		if verr := ru.Validate(); verr != nil {
			if tolerant {
				rs.corrupt.Add(1)
				continue
			}
			roundErr = verr
			continue
		}
		if ru.HasPayload && ru.Payload.Codec != uint8(codec) {
			if tolerant {
				rs.corrupt.Add(1)
				continue
			}
			roundErr = fmt.Errorf("%w: upload from peer %d coded %d, round %d negotiated %d",
				ErrCodecMismatch, e.From, ru.Payload.Codec, t, uint8(codec))
			continue
		}
		if ru.Client < 0 || ru.Client >= n {
			if tolerant {
				rs.corrupt.Add(1)
				continue
			}
			roundErr = fmt.Errorf("distrib: client id %d out of range (%d clients)", ru.Client, n)
			continue
		}
		if ru.Client != e.From {
			if tolerant {
				rs.corrupt.Add(1)
				continue
			}
			roundErr = fmt.Errorf("%w: upload labeled client %d arrived from peer %d", ErrPeerMismatch, ru.Client, e.From)
			continue
		}
		if !inCohort[ru.Client] {
			// Registered but not scheduled this round (offline per the
			// availability trace, or joined after the barrier): the upload is
			// out-of-round traffic.
			if tolerant {
				rs.stale.Add(1)
				continue
			}
			roundErr = fmt.Errorf("%w: upload from client %d outside round %d's cohort", ErrStaleEnvelope, ru.Client, t)
			continue
		}
		if ru.Round != t {
			if tolerant {
				rs.stale.Add(1)
				continue
			}
			roundErr = fmt.Errorf("%w: upload payload stamped round %d during round %d", ErrStaleEnvelope, ru.Round, t)
			continue
		}
		if seen[ru.Client] {
			if tolerant {
				rs.dup.Add(1)
				continue
			}
			roundErr = fmt.Errorf("%w: client %d", ErrDuplicateUpload, ru.Client)
			continue
		}
		seen[ru.Client] = true
		await--
		if ru.Err != "" {
			// A client-side hook failure aborts the round in both modes: the
			// failure model covers the infrastructure, not the algorithm.
			roundErr = fmt.Errorf("distrib: client %d: %s", ru.Client, ru.Err)
			continue
		}
		if !ru.HasPayload {
			continue
		}
		p, perr := ru.Payload.ToPayloadRef(refParams)
		if perr != nil {
			if tolerant {
				rs.corrupt.Add(1)
				continue
			}
			roundErr = perr
			continue
		}
		if codec == comm.CodecFloat64 {
			ledger.AddUpload(e.WireSize())
		} else {
			raw := rawWireSize(
				transport.RoundUpload{Round: ru.Round, Client: ru.Client, HasPayload: true, Payload: transport.PayloadToWire(p)},
				e.WireSize())
			ledger.AddUploadRaw(e.WireSize(), raw)
		}
		if sink != nil {
			if serr := sink(engine.Upload{Client: ru.Client, Payload: p}); serr != nil {
				roundErr = serr
			}
			continue
		}
		uploads = append(uploads, engine.Upload{Client: ru.Client, Payload: p})
	}
	missing := make([]int, 0)
	for _, c := range cohort {
		if !seen[c] {
			missing = append(missing, c)
		}
	}
	return uploads, &roundReport{cohort: len(cohort) - len(missing), missing: missing}, roundErr, nil
}

// clientPeer is one client worker's connection state: the fault-wrapped
// conn, its receiver pump, and the transport's reconnect hook.
type clientPeer struct {
	id     int
	conn   *faults.Conn
	rx     *receiver
	stats  *faults.Stats
	redial func(id int) (transport.Conn, error) // nil when the transport cannot reconnect (bus)
}

// restart simulates a crash-restart. On TCP the connection is torn down and
// redialed through the join handshake, exactly like a restarted process; the
// fault wrapper persists across the swap so injection streams stay aligned.
// On the bus there is no connection to drop — the restarted client instead
// loses its queued inbox, and whatever arrives later is discarded by round
// gating.
func (p *clientPeer) restart() error {
	if p.redial == nil {
		p.rx.drain()
		return nil
	}
	p.rx.stop()
	p.conn.Inner().Close()
	conn, err := p.redial(p.id)
	if err != nil {
		return fmt.Errorf("distrib: client %d rejoin: %w", p.id, err)
	}
	p.conn.SetInner(conn)
	p.rx = newReceiver(p.conn)
	return nil
}

// clientWorker runs one client's per-round protocol until its start channel
// closes. Closing the conn on the way out unblocks the receiver pump, so
// worker shutdown never leaks a goroutine stuck in Recv.
func clientWorker(p *clientPeer, runner *engine.Runner, rec *obs.Recorder, opts *Options, tolerant bool, rs *roundStats, start <-chan int, done chan<- error) {
	defer func() {
		p.rx.stop()
		p.conn.Close()
	}()
	for t := range start {
		done <- clientRound(p, t, runner, rec, opts, tolerant, rs)
	}
}

// gateClient validates a server→client envelope against the current round.
// ok=false with a nil error means the envelope was counted and dropped
// (tolerant mode).
func gateClient(id, t int, e *transport.Envelope, tolerant bool, rs *roundStats) (ok bool, err error) {
	if e.From != -1 || e.To != id {
		if tolerant {
			rs.stale.Add(1)
			return false, nil
		}
		return false, fmt.Errorf("%w: client %d got envelope from %d to %d", ErrPeerMismatch, id, e.From, e.To)
	}
	if e.Round != t {
		if tolerant {
			rs.stale.Add(1)
			return false, nil
		}
		return false, fmt.Errorf("%w: client %d got round %d envelope during round %d", ErrStaleEnvelope, id, e.Round, t)
	}
	if e.Kind != transport.KindRoundStart && e.Kind != transport.KindRoundEnd {
		if tolerant {
			rs.stale.Add(1)
			return false, nil
		}
		return false, fmt.Errorf("client %d: unexpected message kind %v", id, e.Kind)
	}
	return true, nil
}

// clientRound runs one client round: receive RoundStart, train, upload,
// receive RoundEnd, digest. A local hook failure is reported upstream in the
// upload's Err field — the protocol keeps flowing so neither side deadlocks.
// In tolerant mode the client also survives the round passing it by: a recv
// timeout (2× the server's deadline, so the server always gives up first)
// parks it until the next fan-out.
func clientRound(p *clientPeer, t int, runner *engine.Runner, rec *obs.Recorder, opts *Options, tolerant bool, rs *roundStats) error {
	if opts.Faults.CrashesAt(p.id, t) {
		p.stats.CountCrash()
		return p.restart()
	}
	if opts.Topology.Enabled() &&
		opts.Faults.LeafCrashesAt(ShardOf(p.id, runner.Config().Env.Cfg.NumClients, opts.Topology.Shards), t) {
		// This client's leaf aggregator is crashed for the round, so its
		// RoundStart can never arrive. Skip deterministically — the leaf-plane
		// failure detector — instead of burning the recv deadline.
		return nil
	}
	hooks := runner.Hooks()
	rc := runner.Context(t)

	var wait time.Duration
	if opts.ClientTimeout > 0 {
		wait = 2 * opts.ClientTimeout
	}

	var roundErr error
	var endEnv *transport.Envelope
	uploaded := false
	for endEnv == nil && !uploaded {
		e, err := p.rx.recv(wait)
		if errors.Is(err, errRecvTimeout) {
			return nil // the round passed this client by
		}
		if err != nil {
			return fmt.Errorf("client %d recv: %w", p.id, err)
		}
		ok, gerr := gateClient(p.id, t, e, tolerant, rs)
		if gerr != nil {
			return gerr
		}
		if !ok {
			continue
		}
		if e.Kind == transport.KindRoundEnd {
			// RoundStart was lost in transit: no training this round, go
			// straight to the broadcast digest so local state stays current.
			endEnv = e
			break
		}
		var startMsg transport.RoundStart
		if derr := transport.Decode(e.Payload, &startMsg); derr != nil {
			if tolerant {
				rs.corrupt.Add(1)
				continue
			}
			return derr
		}
		if verr := startMsg.Validate(); verr != nil {
			if tolerant {
				rs.corrupt.Add(1)
				continue
			}
			return verr
		}
		roundCodec := comm.Codec(startMsg.Codec)
		var global *engine.Payload
		if startMsg.HasGlobal {
			var perr error
			// Globals are never delta-coded, so the ref-free decode always
			// applies; the decoded (quantized) params double as the delta
			// reference for this client's upload.
			if global, perr = startMsg.Global.ToPayload(); perr != nil {
				if tolerant {
					rs.corrupt.Add(1)
					continue
				}
				return perr
			}
		}
		var refParams []float64
		if global != nil {
			refParams = global.Params
		}
		stopTrain := rec.ClientSpan(p.id)
		up, uerr := hooks.LocalUpdate(rc, p.id, global)
		stopTrain()
		ru := transport.RoundUpload{Round: t, Client: p.id}
		if uerr != nil {
			roundErr = uerr
			ru.Err = uerr.Error()
		} else if up != nil {
			if w, werr := transport.PayloadToWireIn(up, roundCodec, refParams); werr != nil {
				roundErr = werr
				ru.Err = werr.Error()
			} else {
				ru.HasPayload = true
				ru.Payload = w
			}
		}
		if serr := p.sendUpload(t, ru, opts, tolerant, rs); serr != nil {
			if tolerant && errors.Is(serr, faults.ErrTransient) {
				// The upload was lost to chaos after exhausting retries;
				// the server's deadline covers the gap.
			} else if roundErr == nil {
				roundErr = serr
			}
		}
		uploaded = true
	}

	for endEnv == nil {
		e, err := p.rx.recv(wait)
		if errors.Is(err, errRecvTimeout) {
			return roundErr
		}
		if err != nil {
			if roundErr != nil {
				return roundErr
			}
			return fmt.Errorf("client %d recv: %w", p.id, err)
		}
		ok, gerr := gateClient(p.id, t, e, tolerant, rs)
		if gerr != nil {
			if roundErr != nil {
				return roundErr
			}
			return gerr
		}
		if !ok {
			continue
		}
		if e.Kind != transport.KindRoundEnd {
			if tolerant {
				rs.stale.Add(1) // duplicated RoundStart after upload
				continue
			}
			return fmt.Errorf("client %d: unexpected message kind %v", p.id, e.Kind)
		}
		endEnv = e
	}

	var re transport.RoundEnd
	if err := transport.Decode(endEnv.Payload, &re); err != nil {
		if tolerant {
			rs.corrupt.Add(1)
			return roundErr
		}
		return err
	}
	if err := re.Validate(); err != nil {
		if tolerant {
			rs.corrupt.Add(1)
			return roundErr
		}
		return err
	}
	if roundErr != nil {
		return roundErr
	}
	if re.Err != "" {
		return fmt.Errorf("client %d: server aborted round %d: %s", p.id, t, re.Err)
	}
	if !re.HasBroadcast {
		return nil
	}
	bcast, err := re.Broadcast.ToPayload()
	if err != nil {
		if tolerant {
			rs.corrupt.Add(1)
			return nil
		}
		return err
	}
	stopPublic := rec.Span(obs.PhaseClientPublic)
	derr := hooks.Digest(rc, p.id, bcast)
	stopPublic()
	return derr
}

// sendUpload encodes and sends one RoundUpload, retrying transient failures
// with deterministic exponential backoff. The jitter stream is keyed by
// (seed, round, client) in a label band disjoint from every other RNG
// consumer, so retry schedules never perturb training draws.
func (p *clientPeer) sendUpload(t int, ru transport.RoundUpload, opts *Options, tolerant bool, rs *roundStats) error {
	payload, err := transport.Encode(ru)
	if err != nil {
		return err
	}
	e := &transport.Envelope{Kind: transport.KindUpload, From: p.id, To: -1, Round: t, Payload: payload}
	b := opts.Retry.WithDefaults()
	var rng *stats.RNG
	for attempt := 1; ; attempt++ {
		err := p.conn.Send(e)
		if err == nil {
			return nil
		}
		if !tolerant || !errors.Is(err, faults.ErrTransient) || attempt >= b.Attempts {
			return err
		}
		if rng == nil {
			var seed uint64
			if opts.Faults != nil {
				seed = opts.Faults.Seed
			}
			rng = stats.Split(seed, uint64(t)*1000+600+uint64(p.id))
		}
		rs.retries.Add(1)
		time.Sleep(b.Delay(attempt, rng))
	}
}

// receiver pumps a Conn into a channel so callers can apply deadlines to
// Recv. stop() detaches the pump; the pump also exits when the conn errors
// (including the close a worker issues on shutdown), so no goroutine is left
// blocked on a channel send.
type receiver struct {
	ch   chan recvResult
	done chan struct{}
	once sync.Once
}

type recvResult struct {
	e   *transport.Envelope
	err error
}

// errRecvTimeout reports a recv deadline expiring — a normal event in
// tolerant mode, never surfaced to callers of the package.
var errRecvTimeout = errors.New("distrib: recv timeout")

func newReceiver(conn transport.Conn) *receiver {
	r := &receiver{ch: make(chan recvResult, 4), done: make(chan struct{})}
	go func() {
		defer close(r.ch)
		for {
			e, err := conn.Recv()
			select {
			case r.ch <- recvResult{e, err}:
			case <-r.done:
				return
			}
			if err != nil {
				// One peer's dead connection does not end a mux stream — the
				// other peers are still talking and the dead one may redial.
				var gone *peerGoneError
				if !errors.As(err, &gone) {
					return
				}
			}
		}
	}()
	return r
}

// recv returns the next envelope, waiting at most timeout (forever when
// timeout <= 0). A stopped or exhausted receiver reports io.EOF.
func (r *receiver) recv(timeout time.Duration) (*transport.Envelope, error) {
	if timeout <= 0 {
		res, ok := <-r.ch
		if !ok {
			return nil, io.EOF
		}
		return res.e, res.err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res, ok := <-r.ch:
		if !ok {
			return nil, io.EOF
		}
		return res.e, res.err
	case <-timer.C:
		return nil, errRecvTimeout
	}
}

// drain discards everything currently buffered without blocking — the
// bus-mode crash semantics (a restarted process has an empty inbox). Late
// arrivals are caught by round gating instead.
func (r *receiver) drain() {
	for {
		select {
		case _, ok := <-r.ch:
			if !ok {
				return
			}
		default:
			return
		}
	}
}

func (r *receiver) stop() { r.once.Do(func() { close(r.done) }) }

// peerGoneError reports that one client's server-side connection died. In
// tolerant mode the collect loop skips it (the client may redial); in
// strict mode it aborts the round.
type peerGoneError struct {
	id  int
	err error
}

func (p *peerGoneError) Error() string {
	return fmt.Sprintf("distrib: peer %d connection lost: %v", p.id, p.err)
}

func (p *peerGoneError) Unwrap() error { return p.err }

// muxConn fans per-client server connections into one Conn: Recv pulls from
// all peers, Send routes by Envelope.To. Registrations are dynamic —
// acceptLoop rebinds a client id to a fresh conn when it redials, closing
// the old one. Pump goroutines deliver through a select on the done channel,
// so Close never strands a pump blocked on the inbox.
type muxConn struct {
	mu    sync.Mutex
	conns map[int]transport.Conn
	inbox chan recvResult
	done  chan struct{}
	once  sync.Once
}

var _ transport.Conn = (*muxConn)(nil)

func newMuxConn(n int) *muxConn {
	return &muxConn{
		conns: make(map[int]transport.Conn, n),
		inbox: make(chan recvResult, n+4),
		done:  make(chan struct{}),
	}
}

// register binds id to conn (replacing and closing any previous conn) and
// starts its pump.
func (m *muxConn) register(id int, conn transport.Conn) {
	m.mu.Lock()
	old := m.conns[id]
	m.conns[id] = conn
	m.mu.Unlock()
	if old != nil {
		old.Close()
	}
	go m.pump(id, conn)
}

func (m *muxConn) pump(id int, conn transport.Conn) {
	for {
		e, err := conn.Recv()
		if err != nil {
			m.mu.Lock()
			current := m.conns[id] == conn
			if current {
				delete(m.conns, id)
			}
			m.mu.Unlock()
			if current {
				m.deliver(recvResult{nil, &peerGoneError{id, err}})
			}
			return
		}
		if !m.deliver(recvResult{e, nil}) {
			return
		}
	}
}

func (m *muxConn) deliver(r recvResult) bool {
	select {
	case m.inbox <- r:
		return true
	case <-m.done:
		return false
	}
}

func (m *muxConn) Send(e *transport.Envelope) error {
	m.mu.Lock()
	conn := m.conns[e.To]
	m.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("distrib: mux send to unknown client %d", e.To)
	}
	return conn.Send(e)
}

func (m *muxConn) Recv() (*transport.Envelope, error) {
	select {
	case r := <-m.inbox:
		return r.e, r.err
	case <-m.done:
		return nil, io.EOF
	}
}

func (m *muxConn) Close() error {
	m.once.Do(func() { close(m.done) })
	m.mu.Lock()
	conns := make([]transport.Conn, 0, len(m.conns))
	for id, c := range m.conns {
		conns = append(conns, c)
		delete(m.conns, id)
	}
	m.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return nil
}

// waitRegistered blocks until n clients have completed the join handshake.
func (m *muxConn) waitRegistered(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		m.mu.Lock()
		got := len(m.conns)
		m.mu.Unlock()
		if got >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("distrib: only %d of %d clients joined within %v", got, n, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}
