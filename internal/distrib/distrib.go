// Package distrib runs FedPKD as communicating processes: the server and
// every client execute in their own goroutine and exchange knowledge
// exclusively through the transport layer (in-memory bus or real TCP),
// exercising the same wire protocol a multi-host deployment would use. The
// ledger records the actual encoded wire bytes rather than the analytic
// sizes of internal/comm.
package distrib

import (
	"fmt"
	"io"

	"fedpkd/internal/comm"
	"fedpkd/internal/core"
	"fedpkd/internal/dataset"
	"fedpkd/internal/filter"
	"fedpkd/internal/fl"
	"fedpkd/internal/kd"
	"fedpkd/internal/models"
	"fedpkd/internal/nn"
	"fedpkd/internal/obs"
	"fedpkd/internal/proto"
	"fedpkd/internal/stats"
	"fedpkd/internal/tensor"
	"fedpkd/internal/transport"
)

// Mode selects the wire.
type Mode string

// Supported modes.
const (
	// ModeBus uses the in-memory transport.
	ModeBus Mode = "bus"
	// ModeTCP uses loopback TCP connections.
	ModeTCP Mode = "tcp"
)

// Config parameterizes a distributed FedPKD run. The algorithm knobs are
// core.Config's; Mode selects the transport.
type Config struct {
	Core core.Config
	Mode Mode
	// Recorder, when non-nil, receives per-round spans and wire-byte
	// counters; it is attached to the run's ledger as a comm.Observer.
	Recorder *obs.Recorder
}

// Run executes rounds of FedPKD over the transport and returns the history.
// All model state lives in the worker goroutines during a round; evaluation
// happens at round barriers when every worker is parked. The distributed
// runner always uses full participation: cfg.Core.ClientFraction and
// ClientDropProb apply to the in-process simulation only.
func Run(cfg Config, rounds int) (*fl.History, error) {
	if cfg.Mode == "" {
		cfg.Mode = ModeBus
	}
	env := cfg.Core.Env
	if env == nil {
		return nil, fmt.Errorf("distrib: Core.Env is required")
	}
	// Reuse core.New for validation and defaulting, then run our own loop.
	validated, err := core.New(cfg.Core)
	if err != nil {
		return nil, err
	}
	coreCfg := validated.ConfigSnapshot()

	serverConn, clientConns, cleanup, err := buildTransport(cfg.Mode, env.Cfg.NumClients)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	numClients := env.Cfg.NumClients
	clients := make([]*nn.Network, numClients)
	clientOpts := make([]nn.Optimizer, numClients)
	for c := 0; c < numClients; c++ {
		net, err := models.BuildNamed(stats.Split(coreCfg.Seed, uint64(c)+100), coreCfg.ClientArchs[c], env.InputDim(), env.Classes())
		if err != nil {
			return nil, err
		}
		clients[c] = net
		clientOpts[c] = nn.NewAdam(coreCfg.LR)
	}
	server, err := models.BuildNamed(stats.Split(coreCfg.Seed, 99), coreCfg.ServerArch, env.InputDim(), env.Classes())
	if err != nil {
		return nil, err
	}
	serverOpt := nn.NewAdam(coreCfg.LR)

	ledger := comm.NewLedger()
	rec := cfg.Recorder
	if rec != nil {
		ledger.SetObserver(rec)
	}
	hist := &fl.History{Algo: "FedPKD(distributed)", Dataset: env.Cfg.Spec.Name, Setting: env.Cfg.Partition.String()}

	// Round barriers: start signals fan out, done signals fan in.
	start := make([]chan int, numClients)
	for c := range start {
		start[c] = make(chan int, 1)
	}
	done := make(chan error, numClients)

	for c := 0; c < numClients; c++ {
		go clientWorker(c, coreCfg, env, clients[c], clientOpts[c], clientConns[c], rec, start[c], done)
	}

	serverErr := make(chan error, 1)
	go func() {
		serverErr <- serverWorker(coreCfg, env, server, serverOpt, serverConn, ledger, rec, rounds)
	}()

	var firstErr error
	for t := 0; t < rounds; t++ {
		ledger.StartRound(t)
		// Every client runs in its own goroutine: full fan-out.
		rec.SetWorkers(numClients)
		for c := range start {
			start[c] <- t
		}
		for i := 0; i < numClients; i++ {
			if err := <-done; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			break
		}
		// All workers parked: evaluate safely.
		stopEval := rec.Span(obs.PhaseEval)
		hist.Add(fl.RoundMetrics{
			Round:        t,
			ServerAcc:    fl.Accuracy(server, env.Splits.Test),
			ClientAcc:    fl.MeanClientAccuracy(clients, env.LocalTests),
			CumulativeMB: ledger.TotalMB(),
		})
		stopEval()
	}
	for c := range start {
		close(start[c])
	}
	if err := <-serverErr; err != nil && firstErr == nil {
		firstErr = err
	}
	rec.Finish()
	return hist, firstErr
}

// buildTransport wires one server conn and n client conns.
func buildTransport(mode Mode, n int) (transport.Conn, []transport.Conn, func(), error) {
	switch mode {
	case ModeBus:
		bus := transport.NewBus(n, n*2)
		conns := make([]transport.Conn, n)
		for c := range conns {
			conns[c] = bus.ClientConn(c)
		}
		return bus.ServerConn(), conns, bus.Close, nil
	case ModeTCP:
		srv, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, err
		}
		accepted := make(chan transport.Conn, n)
		acceptErr := make(chan error, 1)
		go func() {
			for i := 0; i < n; i++ {
				conn, err := srv.Accept()
				if err != nil {
					acceptErr <- err
					return
				}
				accepted <- conn
			}
			acceptErr <- nil
		}()
		conns := make([]transport.Conn, n)
		for c := range conns {
			conn, err := transport.Dial(srv.Addr())
			if err != nil {
				srv.Close()
				return nil, nil, nil, err
			}
			conns[c] = conn
		}
		if err := <-acceptErr; err != nil {
			srv.Close()
			return nil, nil, nil, err
		}
		// The server multiplexes over the accepted connections.
		serverSide := make([]transport.Conn, 0, n)
		for i := 0; i < n; i++ {
			serverSide = append(serverSide, <-accepted)
		}
		mux := newMuxConn(serverSide)
		cleanup := func() {
			mux.Close()
			for _, c := range conns {
				c.Close()
			}
			srv.Close()
		}
		return mux, conns, cleanup, nil
	default:
		return nil, nil, nil, fmt.Errorf("distrib: unknown mode %q", mode)
	}
}

// clientWorker runs one client's per-round protocol.
func clientWorker(id int, cfg core.Config, env *fl.Env, net *nn.Network, opt nn.Optimizer, conn transport.Conn, rec *obs.Recorder, start <-chan int, done chan<- error) {
	var globalProtos *proto.Set
	publicX := env.Splits.Public.X
	for t := range start {
		done <- func() error {
			rng := stats.Split(cfg.Seed, uint64(t)*1000+uint64(id))
			// Private training (Eq. 4 / Eq. 16).
			stopTrain := rec.ClientSpan(id)
			if t == 0 || globalProtos == nil || cfg.DisablePrototypes {
				fl.TrainCE(net, opt, env.ClientData[id], rng, cfg.ClientPrivateEpochs, cfg.BatchSize)
			} else {
				fl.TrainCEWithProto(net, opt, env.ClientData[id], rng, cfg.ClientPrivateEpochs, cfg.BatchSize, globalProtos, cfg.Epsilon)
			}
			stopTrain()

			// Dual knowledge upload.
			logits := net.Logits(publicX)
			protos := proto.Compute(net.Features, env.ClientData[id])
			pc, cnt, dim, vals := transport.ProtoToWire(protos)
			payload, err := transport.Encode(transport.ClientKnowledge{
				ClientID: id, Round: t,
				Samples: logits.Rows, Classes: logits.Cols,
				Logits:       transport.MatrixToFloat32(logits),
				ProtoClasses: pc, ProtoCounts: cnt, ProtoDim: dim, ProtoValues: vals,
			})
			if err != nil {
				return err
			}
			if err := conn.Send(&transport.Envelope{Kind: transport.KindClientKnowledge, From: id, To: -1, Round: t, Payload: payload}); err != nil {
				return err
			}

			// Server knowledge download.
			e, err := conn.Recv()
			if err != nil {
				return fmt.Errorf("client %d recv: %w", id, err)
			}
			if e.Kind != transport.KindServerKnowledge {
				return fmt.Errorf("client %d: unexpected message kind %v", id, e.Kind)
			}
			var sk transport.ServerKnowledge
			if err := transport.Decode(e.Payload, &sk); err != nil {
				return err
			}
			if err := sk.Validate(); err != nil {
				return err
			}
			serverLogits, err := transport.Float32ToMatrix(sk.Samples, sk.Classes, sk.Logits)
			if err != nil {
				return err
			}
			globalProtos, err = transport.ProtoFromWire(env.Classes(), sk.ProtoClasses, sk.ProtoCounts, sk.ProtoDim, sk.ProtoValues)
			if err != nil {
				return err
			}
			selected := make([]int, len(sk.SelectedIndices))
			for i, v := range sk.SelectedIndices {
				selected[i] = int(v)
			}
			subsetX := dataset.GatherRows(publicX, selected)
			pseudo := kd.PseudoLabels(serverLogits)

			// Public training (Eq. 15).
			rng2 := stats.Split(cfg.Seed, uint64(t)*1000+500+uint64(id))
			stopPublic := rec.Span(obs.PhaseClientPublic)
			fl.TrainDistill(net, opt, subsetX, serverLogits, pseudo, rng2, cfg.ClientPublicEpochs, cfg.BatchSize, cfg.Gamma, cfg.Temperature)
			stopPublic()
			return nil
		}()
	}
}

// serverWorker runs the server side of the protocol for the given number of
// rounds.
func serverWorker(cfg core.Config, env *fl.Env, server *nn.Network, opt nn.Optimizer, conn transport.Conn, ledger *comm.Ledger, rec *obs.Recorder, rounds int) error {
	numClients := env.Cfg.NumClients
	publicX := env.Splits.Public.X
	for t := 0; t < rounds; t++ {
		clientLogits := make([]*tensor.Matrix, numClients)
		clientProtos := make([]*proto.Set, numClients)
		for i := 0; i < numClients; i++ {
			e, err := conn.Recv()
			if err != nil {
				return fmt.Errorf("server recv: %w", err)
			}
			ledger.AddUpload(e.WireSize())
			var ck transport.ClientKnowledge
			if err := transport.Decode(e.Payload, &ck); err != nil {
				return err
			}
			if err := ck.Validate(); err != nil {
				return err
			}
			if ck.ClientID >= numClients {
				return fmt.Errorf("distrib: client id %d out of range (%d clients)", ck.ClientID, numClients)
			}
			logits, err := transport.Float32ToMatrix(ck.Samples, ck.Classes, ck.Logits)
			if err != nil {
				return err
			}
			protos, err := transport.ProtoFromWire(env.Classes(), ck.ProtoClasses, ck.ProtoCounts, ck.ProtoDim, ck.ProtoValues)
			if err != nil {
				return err
			}
			clientLogits[ck.ClientID] = logits
			clientProtos[ck.ClientID] = protos
		}

		stopAgg := rec.Span(obs.PhaseAggregate)
		aggregated := kd.AggregateVarianceWeighted(clientLogits)
		globalProtos, err := proto.Aggregate(clientProtos)
		if err != nil {
			stopAgg()
			return err
		}
		pseudo := kd.PseudoLabels(aggregated)
		stopAgg()

		stopFilter := rec.Span(obs.PhaseFilter)
		var selected []int
		if cfg.DisableFiltering {
			selected = make([]int, publicX.Rows)
			for i := range selected {
				selected[i] = i
			}
		} else {
			selected = filter.Select(server.Features(publicX), pseudo, globalProtos, cfg.SelectRatio)
		}
		stopFilter()
		subsetX := dataset.GatherRows(publicX, selected)
		subsetTeacher := dataset.GatherRows(aggregated, selected)
		subsetPseudo := make([]int, len(selected))
		for i, j := range selected {
			subsetPseudo[i] = pseudo[j]
		}

		serverProtos := globalProtos
		if cfg.DisablePrototypes {
			serverProtos = nil
		}
		rng := stats.Split(cfg.Seed, uint64(t)*1000+999)
		stopServer := rec.Span(obs.PhaseServerTrain)
		fl.TrainServerPKD(server, opt, subsetX, subsetTeacher, subsetPseudo, serverProtos, rng, cfg.ServerEpochs, cfg.BatchSize, cfg.Delta, cfg.Temperature)
		stopServer()

		serverLogits := server.Logits(subsetX)
		idx := make([]int32, len(selected))
		for i, v := range selected {
			idx[i] = int32(v)
		}
		pc, cnt, dim, vals := transport.ProtoToWire(globalProtos)
		payload, err := transport.Encode(transport.ServerKnowledge{
			Round:           t,
			SelectedIndices: idx,
			Samples:         serverLogits.Rows, Classes: serverLogits.Cols,
			Logits:       transport.MatrixToFloat32(serverLogits),
			ProtoClasses: pc, ProtoCounts: cnt, ProtoDim: dim, ProtoValues: vals,
		})
		if err != nil {
			return err
		}
		for c := 0; c < numClients; c++ {
			e := &transport.Envelope{Kind: transport.KindServerKnowledge, From: -1, To: c, Round: t, Payload: payload}
			if err := conn.Send(e); err != nil {
				return err
			}
			ledger.AddDownload(e.WireSize())
		}
	}
	return nil
}

// muxConn fans a set of per-client server connections into one Conn: Recv
// pulls from all peers, Send routes by Envelope.To.
type muxConn struct {
	conns []transport.Conn
	inbox chan recvResult
}

type recvResult struct {
	e   *transport.Envelope
	err error
}

func newMuxConn(conns []transport.Conn) *muxConn {
	m := &muxConn{conns: conns, inbox: make(chan recvResult, len(conns))}
	for _, c := range conns {
		c := c
		go func() {
			for {
				e, err := c.Recv()
				m.inbox <- recvResult{e, err}
				if err != nil {
					return
				}
			}
		}()
	}
	return m
}

var _ transport.Conn = (*muxConn)(nil)

func (m *muxConn) Send(e *transport.Envelope) error {
	if e.To < 0 || e.To >= len(m.conns) {
		return fmt.Errorf("distrib: mux send to unknown client %d", e.To)
	}
	return m.conns[e.To].Send(e)
}

func (m *muxConn) Recv() (*transport.Envelope, error) {
	r := <-m.inbox
	return r.e, r.err
}

func (m *muxConn) Close() error {
	var firstErr error
	for _, c := range m.conns {
		if err := c.Close(); err != nil && firstErr == nil && err != io.EOF {
			firstErr = err
		}
	}
	return firstErr
}
