// Package distrib runs any engine-backed algorithm as communicating
// processes: the server and every client execute in their own goroutine and
// exchange knowledge exclusively through the transport layer (in-memory bus
// or real TCP), exercising the same wire protocol a multi-host deployment
// would use. The round skeleton mirrors internal/fl/engine — RoundStart
// carries the front-loaded global state, RoundUpload the local updates,
// RoundEnd the aggregation broadcast — so the phase hooks an algorithm wrote
// for the in-process engine drive the distributed run unchanged. The ledger
// records the actual encoded wire bytes rather than the analytic sizes of
// internal/comm, so traffic totals differ from in-process runs while the
// accuracy trajectory is bit-identical (payload values travel as float64).
package distrib

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"fedpkd/internal/core"
	"fedpkd/internal/fl"
	"fedpkd/internal/fl/engine"
	"fedpkd/internal/obs"
	"fedpkd/internal/transport"
)

// Mode selects the wire.
type Mode string

// Supported modes.
const (
	// ModeBus uses the in-memory transport.
	ModeBus Mode = "bus"
	// ModeTCP uses loopback TCP connections.
	ModeTCP Mode = "tcp"
)

// Config parameterizes a distributed FedPKD run, kept for the original
// FedPKD-only entry point. The algorithm knobs are core.Config's; Mode
// selects the transport.
type Config struct {
	Core core.Config
	Mode Mode
	// Recorder, when non-nil, receives per-round spans and wire-byte
	// counters; it is attached to the run's ledger as a comm.Observer.
	Recorder *obs.Recorder
}

// Run executes rounds of FedPKD over the transport and returns the history.
// It is a convenience wrapper over RunAlgorithm for the paper's main
// algorithm.
func Run(cfg Config, rounds int) (*fl.History, error) {
	if cfg.Core.Env == nil {
		return nil, fmt.Errorf("distrib: Core.Env is required")
	}
	f, err := core.New(cfg.Core)
	if err != nil {
		return nil, err
	}
	return RunAlgorithm(f, cfg.Mode, rounds, cfg.Recorder)
}

// RunAlgorithm executes rounds additional rounds of any engine-backed
// algorithm over the transport and returns the cumulative history. All model
// state lives in the worker goroutines during a round; evaluation (and, when
// a checkpoint policy is set on the runner, the durable checkpoint write)
// happens at round barriers when every worker is parked. The distributed
// runner always uses full participation: ClientFraction and ClientDropProb
// apply to the in-process engine only.
//
// Resume: restore the algorithm first (engine.Runner.ResumeAny) and the run
// continues from the checkpointed round — the server-side checkpoint holds
// every client's model and optimizer state, which the restored hooks carry
// back into the worker goroutines exactly as a real deployment would re-seed
// clients from the next RoundStart.
func RunAlgorithm(algo fl.Algorithm, mode Mode, rounds int, rec *obs.Recorder) (*fl.History, error) {
	runner, err := engine.Of(algo)
	if err != nil {
		return nil, err
	}
	if mode == "" {
		mode = ModeBus
	}
	env := runner.Config().Env
	n := env.Cfg.NumClients
	runner.SetRecorder(rec)

	serverConn, clientConns, cleanup, err := buildTransport(mode, n)
	if err != nil {
		return nil, err
	}
	var once sync.Once
	closeTransport := func() { once.Do(cleanup) }
	defer closeTransport()

	runner.SetHistoryLabelSuffix("(distributed)")
	hist := runner.History()

	// Round barriers: start signals fan out, done signals fan in.
	start := make([]chan int, n)
	for c := range start {
		start[c] = make(chan int, 1)
	}
	done := make(chan error, n)
	for c := 0; c < n; c++ {
		go clientWorker(c, runner, clientConns[c], rec, start[c], done)
	}

	var firstErr error
	for i := 0; i < rounds; i++ {
		t := runner.BeginRound()
		// Every client runs in its own goroutine: full fan-out.
		rec.SetWorkers(n)
		for c := range start {
			start[c] <- t
		}
		serverErr := serverRound(t, runner, serverConn, n)
		if serverErr != nil {
			// Unblock any client still parked on Recv before fanning in.
			closeTransport()
		}
		for j := 0; j < n; j++ {
			if err := <-done; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if serverErr != nil {
			firstErr = serverErr
		}
		if firstErr != nil {
			break
		}
		// All workers parked: evaluate (and checkpoint) safely.
		if err := runner.CompleteRound(); err != nil {
			firstErr = err
			break
		}
	}
	for c := range start {
		close(start[c])
	}
	rec.Finish()
	return hist, firstErr
}

// RunAlgorithmUntil runs over the transport until the run has completed
// total rounds — the resume-aware entry point mirroring
// engine.Runner.RunUntil: after restoring a round-5 checkpoint,
// RunAlgorithmUntil(algo, mode, 10, rec) runs exactly the 5 remaining
// rounds.
func RunAlgorithmUntil(algo fl.Algorithm, mode Mode, total int, rec *obs.Recorder) (*fl.History, error) {
	runner, err := engine.Of(algo)
	if err != nil {
		return nil, err
	}
	if total < runner.CurrentRound() {
		return nil, fmt.Errorf("distrib: RunAlgorithmUntil(%d) but %d rounds already completed", total, runner.CurrentRound())
	}
	return RunAlgorithm(algo, mode, total-runner.CurrentRound(), rec)
}

// serverRound runs the server side of one round: fan out RoundStart, collect
// every upload, aggregate, fan out RoundEnd. A client-reported error aborts
// the round but still produces a RoundEnd so no peer blocks forever.
func serverRound(t int, runner *engine.Runner, conn transport.Conn, n int) error {
	hooks := runner.Hooks()
	ledger := runner.Ledger()
	rc := runner.Context(t)

	global := hooks.GlobalState(t)
	rs := transport.RoundStart{Round: t, HasGlobal: global != nil, Global: transport.PayloadToWire(global)}
	payload, err := transport.Encode(rs)
	if err != nil {
		return err
	}
	for c := 0; c < n; c++ {
		e := &transport.Envelope{Kind: transport.KindRoundStart, From: -1, To: c, Round: t, Payload: payload}
		if err := conn.Send(e); err != nil {
			return err
		}
		if rs.HasGlobal {
			ledger.AddDownload(e.WireSize())
		}
	}

	uploads := make([]engine.Upload, 0, n)
	seen := make([]bool, n)
	var roundErr error
	for i := 0; i < n && roundErr == nil; i++ {
		e, err := conn.Recv()
		if err != nil {
			return fmt.Errorf("server recv: %w", err)
		}
		roundErr = func() error {
			if e.Kind != transport.KindUpload {
				return fmt.Errorf("distrib: unexpected message kind %v", e.Kind)
			}
			var ru transport.RoundUpload
			if err := transport.Decode(e.Payload, &ru); err != nil {
				return err
			}
			if err := ru.Validate(); err != nil {
				return err
			}
			if ru.Client >= n {
				return fmt.Errorf("distrib: client id %d out of range (%d clients)", ru.Client, n)
			}
			if seen[ru.Client] {
				return fmt.Errorf("distrib: duplicate upload from client %d", ru.Client)
			}
			seen[ru.Client] = true
			if ru.Err != "" {
				return fmt.Errorf("distrib: client %d: %s", ru.Client, ru.Err)
			}
			if !ru.HasPayload {
				return nil
			}
			p, err := ru.Payload.ToPayload()
			if err != nil {
				return err
			}
			ledger.AddUpload(e.WireSize())
			uploads = append(uploads, engine.Upload{Client: ru.Client, Payload: p})
			return nil
		}()
	}

	var bcast *engine.Payload
	if roundErr == nil && len(uploads) > 0 {
		// Aggregate sees uploads sorted by client id, exactly like the
		// in-process engine, so reductions are order-stable regardless of
		// which goroutine finished first.
		sort.Slice(uploads, func(i, j int) bool { return uploads[i].Client < uploads[j].Client })
		bcast, roundErr = hooks.Aggregate(rc, uploads)
	}

	re := transport.RoundEnd{Round: t, HasBroadcast: bcast != nil, Broadcast: transport.PayloadToWire(bcast)}
	if roundErr != nil {
		re.HasBroadcast = false
		re.Broadcast = transport.WirePayload{}
		re.Err = roundErr.Error()
	}
	payload, err = transport.Encode(re)
	if err != nil {
		return err
	}
	for c := 0; c < n; c++ {
		e := &transport.Envelope{Kind: transport.KindRoundEnd, From: -1, To: c, Round: t, Payload: payload}
		if err := conn.Send(e); err != nil {
			return err
		}
		if re.HasBroadcast {
			ledger.AddDownload(e.WireSize())
		}
	}
	return roundErr
}

// clientWorker runs one client's per-round protocol until its start channel
// closes.
func clientWorker(id int, runner *engine.Runner, conn transport.Conn, rec *obs.Recorder, start <-chan int, done chan<- error) {
	for t := range start {
		done <- clientRound(id, t, runner, conn, rec)
	}
}

// clientRound runs one client round: receive RoundStart, train, upload,
// receive RoundEnd, digest. A local failure is reported upstream in the
// upload's Err field — the protocol keeps flowing so neither side deadlocks.
func clientRound(id, t int, runner *engine.Runner, conn transport.Conn, rec *obs.Recorder) error {
	hooks := runner.Hooks()
	rc := runner.Context(t)

	e, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("client %d recv: %w", id, err)
	}
	roundErr := func() error {
		if e.Kind != transport.KindRoundStart {
			return fmt.Errorf("client %d: unexpected message kind %v", id, e.Kind)
		}
		var rs transport.RoundStart
		if err := transport.Decode(e.Payload, &rs); err != nil {
			return err
		}
		if err := rs.Validate(); err != nil {
			return err
		}
		var global *engine.Payload
		if rs.HasGlobal {
			if global, err = rs.Global.ToPayload(); err != nil {
				return err
			}
		}
		stopTrain := rec.ClientSpan(id)
		up, err := hooks.LocalUpdate(rc, id, global)
		stopTrain()
		if err != nil {
			return err
		}
		ru := transport.RoundUpload{Round: t, Client: id}
		if up != nil {
			ru.HasPayload = true
			ru.Payload = transport.PayloadToWire(up)
		}
		return sendUpload(conn, id, t, ru)
	}()
	if roundErr != nil {
		// Report the failure upstream so the server's collect loop is never
		// short one upload; a send failure here means the transport itself
		// is down and the server will notice on its own.
		_ = sendUpload(conn, id, t, transport.RoundUpload{Round: t, Client: id, Err: roundErr.Error()})
	}

	e, err = conn.Recv()
	if err != nil {
		if roundErr != nil {
			return roundErr
		}
		return fmt.Errorf("client %d recv: %w", id, err)
	}
	if e.Kind != transport.KindRoundEnd {
		return fmt.Errorf("client %d: unexpected message kind %v", id, e.Kind)
	}
	var re transport.RoundEnd
	if err := transport.Decode(e.Payload, &re); err != nil {
		return err
	}
	if err := re.Validate(); err != nil {
		return err
	}
	if roundErr != nil {
		return roundErr
	}
	if re.Err != "" {
		return fmt.Errorf("client %d: server aborted round %d: %s", id, t, re.Err)
	}
	if !re.HasBroadcast {
		return nil
	}
	bcast, err := re.Broadcast.ToPayload()
	if err != nil {
		return err
	}
	stopPublic := rec.Span(obs.PhaseClientPublic)
	derr := hooks.Digest(rc, id, bcast)
	stopPublic()
	return derr
}

// sendUpload encodes and sends one RoundUpload.
func sendUpload(conn transport.Conn, id, t int, ru transport.RoundUpload) error {
	payload, err := transport.Encode(ru)
	if err != nil {
		return err
	}
	return conn.Send(&transport.Envelope{Kind: transport.KindUpload, From: id, To: -1, Round: t, Payload: payload})
}

// buildTransport wires one server conn and n client conns.
func buildTransport(mode Mode, n int) (transport.Conn, []transport.Conn, func(), error) {
	switch mode {
	case ModeBus:
		bus := transport.NewBus(n, n*2)
		conns := make([]transport.Conn, n)
		for c := range conns {
			conns[c] = bus.ClientConn(c)
		}
		return bus.ServerConn(), conns, bus.Close, nil
	case ModeTCP:
		srv, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, err
		}
		accepted := make(chan transport.Conn, n)
		acceptErr := make(chan error, 1)
		go func() {
			for i := 0; i < n; i++ {
				conn, err := srv.Accept()
				if err != nil {
					acceptErr <- err
					return
				}
				accepted <- conn
			}
			acceptErr <- nil
		}()
		conns := make([]transport.Conn, n)
		for c := range conns {
			conn, err := transport.Dial(srv.Addr())
			if err != nil {
				srv.Close()
				return nil, nil, nil, err
			}
			conns[c] = conn
		}
		if err := <-acceptErr; err != nil {
			srv.Close()
			return nil, nil, nil, err
		}
		// The server multiplexes over the accepted connections.
		serverSide := make([]transport.Conn, 0, n)
		for i := 0; i < n; i++ {
			serverSide = append(serverSide, <-accepted)
		}
		mux := newMuxConn(serverSide)
		cleanup := func() {
			mux.Close()
			for _, c := range conns {
				c.Close()
			}
			srv.Close()
		}
		return mux, conns, cleanup, nil
	default:
		return nil, nil, nil, fmt.Errorf("distrib: unknown mode %q", mode)
	}
}

// muxConn fans a set of per-client server connections into one Conn: Recv
// pulls from all peers, Send routes by Envelope.To.
type muxConn struct {
	conns []transport.Conn
	inbox chan recvResult
}

type recvResult struct {
	e   *transport.Envelope
	err error
}

func newMuxConn(conns []transport.Conn) *muxConn {
	m := &muxConn{conns: conns, inbox: make(chan recvResult, len(conns))}
	for _, c := range conns {
		c := c
		go func() {
			for {
				e, err := c.Recv()
				m.inbox <- recvResult{e, err}
				if err != nil {
					return
				}
			}
		}()
	}
	return m
}

var _ transport.Conn = (*muxConn)(nil)

func (m *muxConn) Send(e *transport.Envelope) error {
	if e.To < 0 || e.To >= len(m.conns) {
		return fmt.Errorf("distrib: mux send to unknown client %d", e.To)
	}
	return m.conns[e.To].Send(e)
}

func (m *muxConn) Recv() (*transport.Envelope, error) {
	r := <-m.inbox
	return r.e, r.err
}

func (m *muxConn) Close() error {
	var firstErr error
	for _, c := range m.conns {
		if err := c.Close(); err != nil && firstErr == nil && err != io.EOF {
			firstErr = err
		}
	}
	return firstErr
}
