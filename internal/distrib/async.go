package distrib

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"fedpkd/internal/comm"
	"fedpkd/internal/fl"
	"fedpkd/internal/fl/engine"
	"fedpkd/internal/obs"
	"fedpkd/internal/transport"
)

// Asynchronous barrier-free rounds over the transport. The engine owns the
// whole scheduling problem — which clients' updates arrive at each flush,
// with what staleness, against which retained global — through the shared
// AsyncPlanFlush/AsyncWeightUploads/AsyncCommitFlush surface, so the
// transport driver below cannot diverge from the in-process one: it only
// moves the planned bytes. The wire protocol is the synchronous one reused
// per flush: every RoundStart/RoundUpload/RoundEnd is stamped with the flush
// index, which keeps PR 5's envelope validation ladder (stale, duplicate,
// misattributed, corrupt) intact. Staleness is a property of the *model
// version* a client trained against, not of the envelope — a contribution
// built on an old global arrives as a perfectly current envelope and is
// weighted by 1/(1+s)^α instead of rejected, while a genuinely stale
// envelope (crash leftovers from a previous flush) is still transport
// hygiene and is dropped exactly as in the synchronous runtime.
//
// The client side is clientRound unchanged: a chosen client receives the
// RoundStart carrying *its* dispatched global (its last refresh), trains,
// uploads (delta-coded against that same global), and digests the flush's
// broadcast. Non-chosen clients never see a start signal and stay parked.

// runAsync is the service's flush loop: one iteration per buffer flush, with
// the same worker-barrier structure as the synchronous loop but fanned out
// only to the flush's chosen clients. Under a dynamic population the planner
// is restricted to the registered clients (and the availability trace
// filters it further inside AsyncPlanFlushFrom); the legacy path passes nil
// eligibility and stays byte-identical to the fixed-fleet flushes.
func (s *Service) runAsync(rounds int) error {
	var firstErr error
	for i := 0; i < rounds; i++ {
		tNext := s.runner.CurrentRound()
		// Same two-phase apply as runSync: pre-gate so a paused service's
		// status is current, post-gate so pause-window arrivals make this
		// flush.
		joins, leaves := s.reg.ApplyPending()
		s.setStatus(tNext)
		if s.opts.Barrier != nil {
			if err := s.opts.Barrier(tNext); err != nil {
				return err
			}
		}
		j2, l2 := s.reg.ApplyPending()
		joins, leaves = joins+j2, leaves+l2
		var eligible []int
		if s.dynamic {
			eligible = s.reg.Active()
		}
		t := s.runner.BeginRound()
		plan, err := s.runner.AsyncPlanFlushFrom(t, eligible)
		if err != nil {
			return err
		}
		s.setStatus(t)
		if s.opts.MinQuorum > 0 && len(plan.Chosen) < s.opts.MinQuorum {
			return fmt.Errorf("%w: flush %d planned %d contributors, quorum %d",
				ErrQuorumNotMet, t, len(plan.Chosen), s.opts.MinQuorum)
		}
		if err := s.preRoundShardQuorum(t); err != nil {
			return err
		}
		s.roundOpen.Store(true)
		s.rs.reset()
		faultBase := s.fstats.Snapshot().Total()
		s.rec.SetWorkers(len(plan.Chosen))
		for _, c := range plan.Chosen {
			s.start[c] <- t
		}
		var contributors []int
		var report *roundReport
		var serverErr error
		if s.tree != nil {
			for _, ch := range s.leafStart {
				ch <- t
			}
			contributors, report, serverErr = s.rootFlush(t, plan)
		} else {
			contributors, report, serverErr = asyncServerFlush(t, s.runner, plan, s.tr.server, s.srx, s.reg, &s.opts, s.tolerant, s.rs)
		}
		if serverErr != nil {
			// Unblock any client still parked on Recv before fanning in.
			s.closeTransport()
		}
		if s.tree != nil {
			// Same ordering as runSync: leaves report in before their clients
			// can finish, and a leaf failure must close the transport first.
			s.drainLeafDone(&firstErr)
			if firstErr != nil {
				s.closeTransport()
			}
		}
		for range plan.Chosen {
			if err := <-s.done; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		s.roundOpen.Store(false)
		if serverErr != nil {
			firstErr = serverErr
		}
		if firstErr != nil {
			return firstErr
		}
		s.runner.AsyncCommitFlush(plan, contributors)
		if s.tolerant || s.treeTol {
			recordAsyncRobustness(t, s.runner, s.rec, &s.opts, plan, report, s.rs, s.fstats.Snapshot().Total()-faultBase)
		}
		if s.dynamic {
			s.rec.SetChurn(obs.Churn{
				Registered: s.reg.Size(),
				Online:     len(s.runner.Online(t)),
				Cohort:     len(plan.Chosen),
				Joins:      joins,
				Leaves:     leaves,
			})
		}
		if err := s.runner.CompleteRound(); err != nil {
			return err
		}
	}
	return nil
}

// recordAsyncRobustness is recordRobustness scoped to the flush's chosen
// cohort: expected is the buffer's planned contributor count, not the fleet.
func recordAsyncRobustness(t int, runner *engine.Runner, rec *obs.Recorder, opts *Options, plan *engine.AsyncFlushPlan, rp *roundReport, rs *roundStats, injected int64) {
	var crashed, timedOut []int
	n := runner.Config().Env.Cfg.NumClients
	inLost := make(map[int]bool, len(rp.lostShards))
	for _, sh := range rp.lostShards {
		inLost[sh] = true
	}
	for _, c := range rp.missing {
		switch {
		case opts.Faults.CrashesAt(c, t):
			crashed = append(crashed, c)
		case opts.Topology.Enabled() && inLost[ShardOf(c, n, opts.Topology.Shards)]:
			// Lost with its whole shard: LostShards already accounts for it.
		default:
			timedOut = append(timedOut, c)
		}
	}
	if rp.cohort < len(plan.Chosen) || len(rp.lostShards) > 0 {
		runner.RecordDegraded(fl.DegradedRound{Round: t, Cohort: rp.cohort, Expected: len(plan.Chosen), Missing: rp.missing, LostShards: rp.lostShards})
	}
	rec.SetRobustness(obs.Robustness{
		Cohort:         rp.cohort,
		Expected:       len(plan.Chosen),
		TimedOut:       timedOut,
		Crashed:        crashed,
		StaleDropped:   int(rs.stale.Load()),
		DupDropped:     int(rs.dup.Load()),
		CorruptDropped: int(rs.corrupt.Load()),
		UnknownDropped: int(rs.unknown.Load()),
		Retries:        int(rs.retries.Load()),
		LeafTimeouts:   int(rs.leafTimeouts.Load()),
		DigestRetries:  int(rs.digestRetries.Load()),
		DigestDups:     int(rs.digestDups.Load()),
		ShardsLost:     rp.lostShards,
		FaultsInjected: injected,
	})
}

// asyncServerFlush runs the server side of one buffer flush: fan the chosen
// clients their (per-client, possibly stale-versioned) dispatched globals,
// collect their uploads, staleness-weight, aggregate, and fan out RoundEnd.
// It mirrors serverRound; the structural difference is that RoundStart is
// per-client (each chosen client gets its own retained global and delta
// reference) rather than one broadcast message.
func asyncServerFlush(t int, runner *engine.Runner, plan *engine.AsyncFlushPlan, conn transport.Conn, rx *receiver, reg *Registry, opts *Options, tolerant bool, rs *roundStats) (contributors []int, report *roundReport, err error) {
	hooks := runner.Hooks()
	ledger := runner.Ledger()
	rc := runner.Context(t)
	codec := runner.Codec()
	coded := codec != comm.CodecFloat64

	refByClient := make(map[int][]float64, len(plan.Chosen))
	for i, c := range plan.Chosen {
		// The dispatched payload was codec-applied at retention, so both ends
		// hold the same (quantized) values — the client's delta reference.
		g := plan.Dispatched[i]
		if g != nil {
			refByClient[c] = g.Params
		}
		payload, hasGlobal, startRaw, werr := encodeRoundStart(t, codec, g)
		if werr != nil {
			return nil, nil, werr
		}
		e := &transport.Envelope{Kind: transport.KindRoundStart, From: -1, To: c, Round: t, Payload: payload}
		sendErr := conn.Send(e)
		billFraming(ledger, hasGlobal, coded, e.WireSize(), startRaw)
		if sendErr != nil && !tolerant {
			return nil, nil, sendErr
		}
	}

	uploads, report, roundErr, err := asyncCollectUploads(t, runner, rx, plan.Chosen, reg, opts, codec, refByClient, tolerant, rs)
	if err != nil {
		return nil, report, err
	}
	if roundErr == nil && opts.MinQuorum > 0 && len(uploads) < opts.MinQuorum {
		roundErr = fmt.Errorf("%w: flush %d aggregated %d of %d required uploads", ErrQuorumNotMet, t, len(uploads), opts.MinQuorum)
	}

	var bcast *engine.Payload
	if roundErr == nil && len(uploads) > 0 {
		sort.Slice(uploads, func(i, j int) bool { return uploads[i].Client < uploads[j].Client })
		for _, u := range uploads {
			contributors = append(contributors, u.Client)
		}
		bcast, roundErr = hooks.Aggregate(rc, runner.AsyncWeightUploads(rc, plan, uploads))
	}

	payload, hasBroadcast, endRaw, roundErr, fatal := buildRoundEnd(t, codec, bcast, roundErr)
	if fatal != nil {
		return nil, report, fatal
	}
	for _, c := range plan.Chosen {
		e := &transport.Envelope{Kind: transport.KindRoundEnd, From: -1, To: c, Round: t, Payload: payload}
		sendErr := conn.Send(e)
		billFraming(ledger, hasBroadcast, coded, e.WireSize(), endRaw)
		if sendErr != nil && !tolerant && roundErr == nil {
			return contributors, report, sendErr
		}
	}
	return contributors, report, roundErr
}

// asyncCollectUploads is collectUploads for a flush: it awaits only the
// chosen clients (minus those the fault schedule crashes this flush), and
// each upload's params delta-decode against that client's own dispatched
// global rather than one shared round reference.
func asyncCollectUploads(t int, runner *engine.Runner, rx *receiver, chosen []int, reg *Registry, opts *Options, codec comm.Codec, refByClient map[int][]float64, tolerant bool, rs *roundStats) (uploads []engine.Upload, report *roundReport, roundErr, err error) {
	ledger := runner.Ledger()
	n := runner.Config().Env.Cfg.NumClients
	uploads = make([]engine.Upload, 0, len(chosen))
	seen := make(map[int]bool, len(chosen))
	isChosen := make(map[int]bool, len(chosen))
	await := 0
	for _, c := range chosen {
		isChosen[c] = true
		if !opts.Faults.CrashesAt(c, t) {
			await++
		}
	}
	var deadline time.Time
	if opts.ClientTimeout > 0 {
		deadline = time.Now().Add(opts.ClientTimeout)
	}
	for await > 0 && roundErr == nil {
		wait := time.Duration(0)
		if !deadline.IsZero() {
			wait = time.Until(deadline)
			if wait <= 0 {
				break
			}
		}
		e, rerr := rx.recv(wait)
		if errors.Is(rerr, errRecvTimeout) {
			break
		}
		var gone *peerGoneError
		if errors.As(rerr, &gone) && tolerant {
			// A dead connection is not a dead client: a crash-restarting peer
			// redials and its upload (if any) arrives on the new conn.
			continue
		}
		if rerr != nil {
			return nil, report, nil, fmt.Errorf("server recv: %w", rerr)
		}
		if e.Kind == transport.KindHello || e.Kind == transport.KindGoodbye {
			// A client may register (or leave) during a flush: queue it for
			// the next barrier and account the bytes, exactly like the
			// synchronous collect loop.
			if e.Kind == transport.KindHello {
				reg.QueueJoin(e.From)
			} else {
				reg.QueueLeave(e.From)
			}
			ledger.AddControl(e.WireSize())
			continue
		}
		if e.Kind != transport.KindUpload || e.Round != t || e.From < 0 || e.From >= n {
			if tolerant {
				rs.stale.Add(1)
				continue
			}
			roundErr = fmt.Errorf("%w: flush %d got kind %v round %d from %d", ErrStaleEnvelope, t, e.Kind, e.Round, e.From)
			continue
		}
		if !reg.Has(e.From) {
			if tolerant {
				rs.unknown.Add(1)
				continue
			}
			roundErr = fmt.Errorf("%w: upload from unregistered peer %d in flush %d", ErrUnknownClient, e.From, t)
			continue
		}
		var ru transport.RoundUpload
		if derr := transport.Decode(e.Payload, &ru); derr != nil {
			if tolerant {
				rs.corrupt.Add(1)
				continue
			}
			roundErr = derr
			continue
		}
		if verr := ru.Validate(); verr != nil {
			if tolerant {
				rs.corrupt.Add(1)
				continue
			}
			roundErr = verr
			continue
		}
		if ru.HasPayload && ru.Payload.Codec != uint8(codec) {
			if tolerant {
				rs.corrupt.Add(1)
				continue
			}
			roundErr = fmt.Errorf("%w: upload from peer %d coded %d, flush %d negotiated %d",
				ErrCodecMismatch, e.From, ru.Payload.Codec, t, uint8(codec))
			continue
		}
		if ru.Client < 0 || ru.Client >= n || !isChosen[ru.Client] {
			if tolerant {
				rs.corrupt.Add(1)
				continue
			}
			roundErr = fmt.Errorf("distrib: client %d is not in flush %d's buffer", ru.Client, t)
			continue
		}
		if ru.Client != e.From {
			if tolerant {
				rs.corrupt.Add(1)
				continue
			}
			roundErr = fmt.Errorf("%w: upload labeled client %d arrived from peer %d", ErrPeerMismatch, ru.Client, e.From)
			continue
		}
		if ru.Round != t {
			if tolerant {
				rs.stale.Add(1)
				continue
			}
			roundErr = fmt.Errorf("%w: upload payload stamped round %d during flush %d", ErrStaleEnvelope, ru.Round, t)
			continue
		}
		if seen[ru.Client] {
			if tolerant {
				rs.dup.Add(1)
				continue
			}
			roundErr = fmt.Errorf("%w: client %d", ErrDuplicateUpload, ru.Client)
			continue
		}
		seen[ru.Client] = true
		await--
		if ru.Err != "" {
			roundErr = fmt.Errorf("distrib: client %d: %s", ru.Client, ru.Err)
			continue
		}
		if !ru.HasPayload {
			continue
		}
		p, perr := ru.Payload.ToPayloadRef(refByClient[ru.Client])
		if perr != nil {
			if tolerant {
				rs.corrupt.Add(1)
				continue
			}
			roundErr = perr
			continue
		}
		if codec == comm.CodecFloat64 {
			ledger.AddUpload(e.WireSize())
		} else {
			raw := rawWireSize(
				transport.RoundUpload{Round: ru.Round, Client: ru.Client, HasPayload: true, Payload: transport.PayloadToWire(p)},
				e.WireSize())
			ledger.AddUploadRaw(e.WireSize(), raw)
		}
		uploads = append(uploads, engine.Upload{Client: ru.Client, Payload: p})
	}
	missing := make([]int, 0)
	for _, c := range chosen {
		if !seen[c] {
			missing = append(missing, c)
		}
	}
	return uploads, &roundReport{cohort: len(chosen) - len(missing), missing: missing}, roundErr, nil
}
