package distrib

import (
	"errors"
	"fmt"
	"time"

	"fedpkd/internal/comm"
	"fedpkd/internal/faults"
	"fedpkd/internal/fl/engine"
	"fedpkd/internal/obs"
	"fedpkd/internal/stats"
	"fedpkd/internal/transport"
)

// Leaf aggregator: one shard's server. Each round the leaf receives a shard
// assignment from the root, fans the round-opening envelopes to its cohort
// slice (the exact bytes the root encoded, billed exactly as the flat server
// bills), collects the shard's uploads through the demultiplexed inbox with
// the same validation ladder the flat server runs, stream-reduces them into
// an engine.Partial, digests the reduction upward, and fans the root's
// round-close back down. The leaf retains no per-client state beyond the
// partial: exact mode holds the shard's surviving uploads (O(shard)),
// compact mode a single running sum (O(1)).

// leafWorker serves rounds for one shard until its start channel closes,
// reporting one result per round on the tree's done channel — the leaf-tier
// mirror of clientWorker.
func (s *Service) leafWorker(shard int, start <-chan int) {
	up := s.tree.leafUp[shard]
	rx := s.tree.leafRx[shard]
	for t := range start {
		s.tree.leafDone <- s.leafRound(shard, t, up, rx)
	}
}

// leafRound serves one round (or async flush) of the leaf's shard.
//
// Two invariants keep every failure path deadlock-free: once the round's
// assignment has arrived the leaf ALWAYS sends a digest (an Err digest when
// the shard failed), so the root's untimed digest collect terminates; and it
// ALWAYS fans a round-close to its cohort (a locally built error close when
// the root's never arrived), so no client parks forever. Failures before the
// assignment arrives mean the upper fabric is dead, in which case the root's
// collect fails too and the service tears the transports down.
func (s *Service) leafRound(shard, t int, up transport.Conn, rx *receiver) error {
	if s.treeTol && s.opts.Faults.LeafCrashesAt(shard, t) {
		s.fstats.CountLeafCrash()
		return s.leafCrashRestart(shard, t, up, rx)
	}
	runner := s.runner
	ledger := runner.Ledger()
	codec := runner.Codec()
	coded := codec != comm.CodecFloat64

	sa, assignErr := awaitAssign(shard, t, up)
	if sa == nil {
		// Not even an envelope: the fabric is gone and the root knows.
		return assignErr
	}
	if assignErr != nil {
		// The envelope arrived but was unusable; without a cohort the leaf can
		// only digest the failure so the root aborts the round, then consume
		// the close the root still fans.
		s.sendDigest(t, shard, &transport.ShardDigest{Round: t, Shard: shard, Err: assignErr.Error()})
		_, _ = awaitShardEnd(shard, t, up)
		return assignErr
	}

	cohort := make([]int, len(sa.Clients))
	for i, cs := range sa.Clients {
		cohort[i] = cs.Client
	}

	// Fan the round opening: shared payload for a synchronous round,
	// per-client retained globals for an async flush. Framing is billed for
	// every cohort member regardless of delivery, like the flat server, so
	// traffic totals never depend on crash timing.
	var fatal error
	for _, cs := range sa.Clients {
		payload, hasGlobal, raw := sa.Start, sa.HasGlobal, sa.StartRaw
		if cs.Start != nil {
			payload, hasGlobal, raw = cs.Start, cs.HasGlobal, cs.StartRaw
		}
		env := &transport.Envelope{Kind: transport.KindRoundStart, From: -1, To: cs.Client, Round: t, Payload: payload}
		sendErr := s.tr.server.Send(env)
		billFraming(ledger, hasGlobal, coded, env.WireSize(), raw)
		if sendErr != nil && !s.tolerant && fatal == nil {
			fatal = sendErr
		}
	}

	part, perr := runner.NewPartial(shard, sa.Compact)
	if perr != nil && fatal == nil {
		fatal = perr
	}

	var report *roundReport
	var roundErr error
	if fatal == nil {
		// Collect and reduce. On a strict-mode fan failure above this is
		// skipped — clients that never saw RoundStart will not upload, and
		// strict collection has no deadline to save us.
		var cerr error
		report, roundErr, cerr = s.collectShard(t, sa, cohort, part, rx)
		if cerr != nil && fatal == nil {
			fatal = cerr
		}
	}
	if report == nil {
		report = &roundReport{missing: cohort}
	}

	digestErr := roundErr
	if fatal != nil {
		digestErr = fatal
	}
	stop := s.rec.Span(obs.PhaseLeafReduce)
	d := buildDigest(t, shard, part, report, digestErr)
	stop()
	s.sendDigest(t, shard, d)

	se, seErr := awaitShardEnd(shard, t, up)
	var endPayload []byte
	hasBroadcast := false
	endRaw := 0
	if seErr != nil {
		// The root's close never arrived (torn fabric mid-round): fan a
		// locally built error close so the shard's clients unpark.
		re := transport.RoundEnd{Round: t, Codec: uint8(codec),
			Err: fmt.Sprintf("distrib: leaf %d lost the root: %v", shard, seErr)}
		endPayload, _ = transport.Encode(re)
		if fatal == nil {
			fatal = seErr
		}
	} else {
		endPayload, hasBroadcast, endRaw = se.End, se.HasBroadcast, se.EndRaw
	}
	if endPayload != nil {
		for _, c := range cohort {
			env := &transport.Envelope{Kind: transport.KindRoundEnd, From: -1, To: c, Round: t, Payload: endPayload}
			sendErr := s.tr.server.Send(env)
			billFraming(ledger, hasBroadcast, coded, env.WireSize(), endRaw)
			if sendErr != nil && !s.tolerant && fatal == nil && roundErr == nil {
				fatal = sendErr
			}
		}
	}
	if fatal != nil {
		return fatal
	}
	return roundErr
}

// leafCrashRestart executes one injected leaf crash: the leaf serves nothing
// this round — it fans no round opening, collects no uploads, and sends no
// digest (the root's deterministic failure detector already wrote the shard
// off). It still consumes its round framing from the root (assignment, then
// the close the root fans to lost shards too) so the tier link carries no
// stale traffic into the next round, then drops whatever its client-plane
// inbox buffered — the restarted-process semantics clientPeer.restart gives
// the bus — and rejoins at the next round, where collectShard re-collects
// the shard's uploads through the usual validation ladder.
func (s *Service) leafCrashRestart(shard, t int, up transport.Conn, rx *receiver) error {
	for {
		e, err := up.Recv()
		if err != nil {
			// The fabric died mid-crash (fatal abort elsewhere tears down the
			// upper transport): surface it like any other dead-link failure.
			return fmt.Errorf("distrib: leaf %d await close: %w", shard, err)
		}
		if e.Kind == transport.KindShardEnd && e.Round == t {
			break
		}
		// The round's assignment (and any stale tier traffic) is consumed
		// without action — a crashed leaf serves nobody.
	}
	rx.drain()
	return nil
}

// collectShard runs the shard's upload collection: the synchronous ladder
// with a streaming sink into the partial, or the flush ladder followed by an
// arrival-order fold (exact partials sort on insert, so the digest is
// deterministic either way). report/roundErr/infra mirror the flat collect's
// triple.
func (s *Service) collectShard(t int, sa *transport.ShardAssign, cohort []int, part *engine.Partial, rx *receiver) (*roundReport, error, error) {
	runner := s.runner
	codec := runner.Codec()
	sink := func(u engine.Upload) error { return runner.PartialReduce(part, u) }
	if !sa.Flush {
		_, report, roundErr, err := collectUploads(t, runner, rx, cohort, s.reg, &s.opts, codec, sa.Ref, s.tolerant, s.rs, sink)
		return report, roundErr, err
	}
	refByClient := make(map[int][]float64, len(sa.Clients))
	for _, cs := range sa.Clients {
		ref := cs.Ref
		if ref == nil {
			ref = sa.Ref
		}
		if ref != nil {
			refByClient[cs.Client] = ref
		}
	}
	uploads, report, roundErr, err := asyncCollectUploads(t, runner, rx, cohort, s.reg, &s.opts, codec, refByClient, s.tolerant, s.rs)
	if err != nil || roundErr != nil {
		return report, roundErr, err
	}
	for _, u := range uploads {
		if perr := runner.PartialReduce(part, u); perr != nil {
			return report, perr, nil
		}
	}
	return report, nil, nil
}

// buildDigest renders the shard's reduction and membership report as the
// upward wire message. Digest payloads travel float64raw (lossless), so the
// root reconstructs bit-identical engine payloads regardless of the
// client-plane codec.
func buildDigest(t, shard int, part *engine.Partial, report *roundReport, digestErr error) *transport.ShardDigest {
	d := &transport.ShardDigest{Round: t, Shard: shard, Heard: report.cohort, Missing: report.missing}
	if digestErr != nil {
		d.Err = digestErr.Error()
		return d
	}
	if part == nil {
		return d
	}
	if part.Compact {
		if part.Sum != nil {
			d.HasSum = true
			d.Sum = transport.PayloadToWire(part.Sum)
		}
		d.Weight = part.Weight
		d.Count = part.Count
		return d
	}
	d.Uploads = make([]transport.ShardUpload, len(part.Uploads))
	for i, u := range part.Uploads {
		d.Uploads[i] = transport.ShardUpload{Client: u.Client, Payload: transport.PayloadToWire(u.Payload)}
	}
	return d
}

// sendDigest ships one digest upward and bills the tier backhaul. An encode
// failure degrades to an empty payload — the root's decode then fails the
// round, which still unblocks its collect; silence would burn the whole
// LeafTimeout. Injected transient send failures are retried with the same
// deterministic backoff the clients use, on a jitter stream disjoint from
// every other RNG consumer; each attempt is billed (attempt counts are a
// pure function of the plan, so billing stays replay-stable). Real send
// failures only happen when the fabric is tearing down, and then the root's
// collect errors on its own.
func (s *Service) sendDigest(t, shard int, d *transport.ShardDigest) {
	payload, err := transport.Encode(d)
	if err != nil {
		payload = nil
	}
	env := &transport.Envelope{Kind: transport.KindShardDigest, From: shard, To: -1, Round: t, Payload: payload}
	b := s.opts.Retry.WithDefaults()
	var rng *stats.RNG
	for attempt := 1; ; attempt++ {
		sendErr := s.tree.leafUp[shard].Send(env)
		s.runner.Ledger().AddTierUp(env.WireSize())
		if sendErr == nil || !s.treeTol || !errors.Is(sendErr, faults.ErrTransient) || attempt >= b.Attempts {
			return
		}
		if rng == nil {
			var seed uint64
			if s.opts.Faults != nil {
				seed = s.opts.Faults.Seed
			}
			rng = stats.Split(seed, uint64(t)*1000+800+uint64(shard))
		}
		s.rs.digestRetries.Add(1)
		s.noteShardRetry(shard)
		time.Sleep(b.Delay(attempt, rng))
	}
}

// awaitAssign receives round t's shard assignment. A nil assignment means no
// envelope arrived at all (dead fabric); a non-nil assignment with an error
// means the envelope was unusable but the tier link still works.
func awaitAssign(shard, t int, up transport.Conn) (*transport.ShardAssign, error) {
	e, err := up.Recv()
	if err != nil {
		return nil, fmt.Errorf("distrib: leaf %d await assignment: %w", shard, err)
	}
	sa := &transport.ShardAssign{}
	if e.Kind != transport.KindShardAssign || e.Round != t {
		return sa, fmt.Errorf("distrib: leaf %d got kind %v round %d awaiting round %d's assignment", shard, e.Kind, e.Round, t)
	}
	if derr := transport.Decode(e.Payload, sa); derr != nil {
		return sa, derr
	}
	if verr := sa.Validate(); verr != nil {
		return sa, verr
	}
	if sa.Shard != shard {
		return sa, fmt.Errorf("distrib: leaf %d got shard %d's assignment", shard, sa.Shard)
	}
	return sa, nil
}

// awaitShardEnd receives round t's close from the root. Tier links are
// infrastructure: any violation is an error, never tolerated chaos.
func awaitShardEnd(shard, t int, up transport.Conn) (*transport.ShardEnd, error) {
	e, err := up.Recv()
	if err != nil {
		return nil, fmt.Errorf("distrib: leaf %d await close: %w", shard, err)
	}
	if e.Kind != transport.KindShardEnd || e.Round != t {
		return nil, fmt.Errorf("distrib: leaf %d got kind %v round %d awaiting round %d's close", shard, e.Kind, e.Round, t)
	}
	var se transport.ShardEnd
	if derr := transport.Decode(e.Payload, &se); derr != nil {
		return nil, derr
	}
	if verr := se.Validate(); verr != nil {
		return nil, verr
	}
	if se.Shard != shard {
		return nil, fmt.Errorf("distrib: leaf %d got shard %d's close", shard, se.Shard)
	}
	return &se, nil
}
