package distrib

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrUnknownClient marks an upload from a peer that never registered with
// the server (or already deregistered). Strict mode returns it wrapped with
// context; tolerant mode counts the envelope in the round's Robustness trace
// and drops it.
var ErrUnknownClient = errors.New("distrib: unknown client")

// Registry tracks the live client population of a long-running service: who
// is registered right now, and the hello/goodbye registrations queued since
// the last round barrier. Registrations are not applied the instant they
// arrive — a client joining mid-round would change that round's cohort
// depending on message timing, breaking same-seed replay — but queued and
// folded in at the next round barrier by ApplyPending, so population changes
// land at deterministic points exactly like the engine's round skeleton.
//
// The id universe is fixed at [0, n): ids address pre-built transport
// endpoints and per-client data shards. What changes at runtime is which of
// those ids are registered, not how many could ever exist.
type Registry struct {
	mu           sync.Mutex
	n            int
	active       map[int]bool
	pendingJoin  map[int]bool
	pendingLeave map[int]bool
}

// NewRegistry returns a registry over the id universe [0, n). initial lists
// the ids registered before the first round: nil registers the whole fleet
// (the legacy fixed-cohort behavior), an empty non-nil slice registers
// nobody (wire-registration mode, where the population arrives as hello
// envelopes). Out-of-range initial ids are an error.
func NewRegistry(n int, initial []int) (*Registry, error) {
	r := &Registry{
		n:            n,
		active:       make(map[int]bool, n),
		pendingJoin:  make(map[int]bool),
		pendingLeave: make(map[int]bool),
	}
	if initial == nil {
		for id := 0; id < n; id++ {
			r.active[id] = true
		}
		return r, nil
	}
	for _, id := range initial {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("distrib: population id %d out of range [0,%d)", id, n)
		}
		r.active[id] = true
	}
	return r, nil
}

// QueueJoin queues a registration (a hello) for the next barrier.
// Out-of-range ids are ignored — the caller's validation ladder already
// counts them. Idempotent: double-registering a client that is already
// active (the PR5 crash/rejoin path re-registering after a restart) is a
// no-op at apply time, not an error.
func (r *Registry) QueueJoin(id int) {
	if id < 0 || id >= r.n {
		return
	}
	r.mu.Lock()
	r.pendingJoin[id] = true
	r.mu.Unlock()
}

// QueueLeave queues a deregistration (a goodbye) for the next barrier.
// Idempotent like QueueJoin.
func (r *Registry) QueueLeave(id int) {
	if id < 0 || id >= r.n {
		return
	}
	r.mu.Lock()
	r.pendingLeave[id] = true
	r.mu.Unlock()
}

// ApplyPending folds the queued registrations into the active set — joins
// first, then leaves, so a hello and a goodbye queued in the same window
// resolve to "left" regardless of arrival order. It returns the number of
// state transitions actually applied (re-registering an active client or
// deregistering an absent one transitions nothing). Call at round barriers
// only.
func (r *Registry) ApplyPending() (joins, leaves int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id := range r.pendingJoin {
		if !r.active[id] {
			r.active[id] = true
			joins++
		}
		delete(r.pendingJoin, id)
	}
	for id := range r.pendingLeave {
		if r.active[id] {
			delete(r.active, id)
			leaves++
		}
		delete(r.pendingLeave, id)
	}
	return joins, leaves
}

// Has reports whether id is currently registered.
func (r *Registry) Has(id int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.active[id]
}

// Size returns the registered population count.
func (r *Registry) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}

// Active returns the registered ids, sorted ascending — the deterministic
// iteration order every cohort computation starts from.
func (r *Registry) Active() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.active))
	for id := range r.active {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
