package distrib

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fedpkd/internal/faults"
	"fedpkd/internal/fl"
	"fedpkd/internal/fl/engine"
	"fedpkd/internal/obs"
	"fedpkd/internal/transport"
)

// Service is the long-lived form of the distributed runtime: where
// RunAlgorithmOpts used to be one monolithic batch loop over a fixed peer
// list, the service owns a client Registry, samples each round's cohort from
// the currently registered population intersected with the availability
// trace, and exposes the hooks a control plane needs — a Barrier callback at
// every round boundary (all workers parked, safe to checkpoint), a live
// Status snapshot, and the Join/Leave registration API. The legacy batch
// entry points are thin wrappers: a service with the full fleet pre-seeded
// into its registry and no availability trace runs byte-identically to the
// old fixed-cohort loop.
type Service struct {
	runner   *engine.Runner
	opts     Options
	n        int
	tolerant bool
	// treeTol marks the tree's tier as failure-tolerant: a LeafTimeout or a
	// tier fault plan makes leaves chaos subjects (root-side shard deadlines,
	// digest retry, degraded-tree rounds). The client-plane tolerant flag is
	// independent — a run can tolerate leaf loss while staying strict about
	// client traffic, and vice versa.
	treeTol bool
	// dynamic marks a run whose population can differ from the fixed full
	// fleet: a partial initial population, wire registration, or an
	// availability trace. Only dynamic runs record churn traces, so legacy
	// runs keep their golden trace schema.
	dynamic bool
	rec     *obs.Recorder
	tr      *transportParts
	srx     *receiver
	reg     *Registry
	peers   map[int]*clientPeer
	start   map[int]chan int
	done    chan error
	rs      *roundStats
	fstats  *faults.Stats
	// tree is the aggregator-tree state when Options.Topology is enabled
	// (nil for the flat runtime); leafStart fans round indices to the leaf
	// workers exactly as start fans them to client workers.
	tree      *treeParts
	leafStart []chan int
	// shardHealth tracks per-leaf liveness for the operator's ctl status
	// (guarded by mu, like status). Nil for flat runs.
	shardHealth []ShardHealth

	roundOpen atomic.Bool
	trOnce    sync.Once
	shutOnce  sync.Once

	mu     sync.Mutex
	status Status
}

// Status is a point-in-time snapshot of the service, refreshed at every
// round barrier (and once more at teardown, after pending registrations are
// drained).
type Status struct {
	// Algo names the running algorithm.
	Algo string `json:"algo"`
	// Round is the next round index the service will run (equals the number
	// of completed rounds).
	Round int `json:"round"`
	// Registered is the registry population; Online is the number of clients
	// the availability trace puts online fleet-wide at Round; Cohort is the
	// number the round actually schedules (registered ∩ online).
	Registered int `json:"registered"`
	Online     int `json:"online"`
	Cohort     int `json:"cohort"`
	// Shards reports per-leaf health in tree mode (nil for flat runs): which
	// round each leaf last digested, how often it retried, and how many
	// rounds lost its shard — enough for an operator to spot a sick leaf.
	Shards []ShardHealth `json:"shards,omitempty"`
}

// ShardHealth is one leaf aggregator's liveness profile, refreshed as the
// root collects digests.
type ShardHealth struct {
	// Shard is the leaf's shard index.
	Shard int `json:"shard"`
	// LastDigestRound is the most recent round whose digest the root accepted
	// from this leaf (-1 before the first).
	LastDigestRound int `json:"last_digest_round"`
	// Retries counts the leaf's digest send retries across the run.
	Retries int `json:"retries"`
	// Lost counts the rounds that lost this shard (crash, timeout, or
	// corrupt digest).
	Lost int `json:"lost"`
}

// NewService builds the transport fabric, registry, and parked client
// workers for an engine-backed algorithm. The caller must Close the service;
// Run may be called at most once.
func NewService(algo fl.Algorithm, opts Options) (*Service, error) {
	runner, err := engine.Of(algo)
	if err != nil {
		return nil, err
	}
	if opts.Mode == "" {
		opts.Mode = ModeBus
	}
	opts.Topology = opts.Topology.withDefaults()
	n := runner.Config().Env.Cfg.NumClients
	if err := opts.validate(n); err != nil {
		return nil, err
	}
	if opts.Topology.Compact {
		if runner.Async() != nil {
			return nil, fmt.Errorf("distrib: compact tree reduction is incompatible with asynchronous flushes: staleness weighting needs per-client uploads at the root")
		}
		if _, ok := runner.CompactReducer(); !ok {
			return nil, fmt.Errorf("distrib: %s does not implement engine.CompactReducer; compact tree reduction needs a streaming fold", runner.Name())
		}
	}
	s := &Service{
		runner:   runner,
		opts:     opts,
		n:        n,
		tolerant: opts.ClientTimeout > 0 || opts.Faults.Enabled(),
		treeTol:  opts.LeafTimeout > 0 || opts.Faults.TierEnabled(),
		dynamic:  opts.Population != nil || opts.WireRegistration || runner.Availability() != nil,
		rec:      opts.Recorder,
		rs:       &roundStats{},
		peers:    make(map[int]*clientPeer),
		start:    make(map[int]chan int),
		done:     make(chan error, n),
	}
	runner.SetRecorder(s.rec)
	ledger := runner.Ledger()

	// Reconnect handshakes are control traffic; they are only billable while
	// a round is open (the ledger has no row before the first StartRound, and
	// the setup handshakes happen before the run's first round).
	billControl := func(bytes int) {
		if s.roundOpen.Load() {
			ledger.AddControl(bytes)
		}
	}
	if s.tr, err = buildTransport(opts.Mode, n, billControl); err != nil {
		return nil, err
	}

	initial := opts.Population
	if opts.WireRegistration {
		// Nobody pre-seeded: the population arrives as hello envelopes.
		initial = []int{}
	}
	if s.reg, err = NewRegistry(n, initial); err != nil {
		s.tr.cleanup()
		return nil, err
	}

	runner.SetHistoryLabelSuffix("(distributed)")
	s.fstats = opts.FaultStats
	if s.fstats == nil {
		s.fstats = &faults.Stats{}
	}

	// One worker per universe id, registered or not: a client that joins
	// mid-run already has its endpoint parked on the start channel, the
	// in-process equivalent of a fleet larger than any one cohort.
	for c := 0; c < n; c++ {
		p := &clientPeer{
			id:     c,
			conn:   faults.Wrap(s.tr.clients[c], opts.Faults, c, s.fstats),
			stats:  s.fstats,
			redial: s.tr.redial,
		}
		p.rx = newReceiver(p.conn)
		s.peers[c] = p
		s.start[c] = make(chan int, 1)
		go clientWorker(p, runner, s.rec, &s.opts, s.tolerant, s.rs, s.start[c], s.done)
	}
	s.srx = newReceiver(s.tr.server)
	if opts.Topology.Enabled() {
		if err := s.setupTree(); err != nil {
			s.srx.stop()
			s.tr.cleanup()
			return nil, err
		}
	}
	s.setStatus(runner.CurrentRound())
	return s, nil
}

// Run executes rounds additional rounds (or async flushes) and returns the
// cumulative history. Call at most once per service.
func (s *Service) Run(rounds int) (*fl.History, error) {
	hist := s.runner.History()
	defer s.rec.Finish()
	if s.opts.WireRegistration {
		if err := s.registerPopulation(); err != nil {
			return hist, err
		}
	}
	var err error
	if s.runner.Async() != nil {
		err = s.runAsync(rounds)
	} else {
		err = s.runSync(rounds)
	}
	// Shutdown drain (see drainRegistrations): registrations still queued in
	// the receiver must not be lost on quit.
	s.drainRegistrations()
	return hist, err
}

// runSync is the synchronous round loop: barrier hook, fold in pending
// registrations, sample the cohort, fan out, serve the round, fan in.
func (s *Service) runSync(rounds int) error {
	var firstErr error
	for i := 0; i < rounds; i++ {
		t := s.runner.CurrentRound()
		// Fold registrations in before the gate runs, so a paused service's
		// status reports who is registered; apply again after it, so arrivals
		// during a long pause join this round rather than the next.
		joins, leaves := s.reg.ApplyPending()
		s.setStatus(t)
		if s.opts.Barrier != nil {
			if err := s.opts.Barrier(t); err != nil {
				return err
			}
		}
		j2, l2 := s.reg.ApplyPending()
		joins, leaves = joins+j2, leaves+l2
		cohort := s.cohortAt(t)
		s.setStatus(t)
		// Fail fast on a hopeless population instead of opening a round that
		// can only time out: quorum is checked before any fan-out.
		if s.opts.MinQuorum > 0 && len(cohort) < s.opts.MinQuorum {
			return fmt.Errorf("%w: round %d has %d registered online clients, quorum %d",
				ErrQuorumNotMet, t, len(cohort), s.opts.MinQuorum)
		}
		if err := s.preRoundShardQuorum(t); err != nil {
			return err
		}
		s.runner.BeginRound()
		s.roundOpen.Store(true)
		s.rs.reset()
		faultBase := s.fstats.Snapshot().Total()
		s.rec.SetWorkers(len(cohort))
		for _, c := range cohort {
			s.start[c] <- t
		}
		var report *roundReport
		var serverErr error
		if s.tree != nil {
			for _, ch := range s.leafStart {
				ch <- t
			}
			report, serverErr = s.rootRound(t, cohort)
		} else {
			report, serverErr = serverRound(t, s.runner, s.tr.server, s.srx, cohort, s.reg, &s.opts, s.tolerant, s.rs)
		}
		if serverErr != nil {
			// Unblock any client still parked on Recv before fanning in.
			s.closeTransport()
		}
		if s.tree != nil {
			// Leaves finish (fan the round close, report in) before their
			// clients can; drain them first so a leaf-side failure closes the
			// transport before the client fan-in would deadlock on it.
			s.drainLeafDone(&firstErr)
			if firstErr != nil {
				s.closeTransport()
			}
		}
		for range cohort {
			if err := <-s.done; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		s.roundOpen.Store(false)
		if serverErr != nil {
			firstErr = serverErr
		}
		if firstErr != nil {
			return firstErr
		}
		if s.tolerant || s.treeTol {
			recordRobustness(t, len(cohort), s.runner, s.rec, &s.opts, report, s.rs, s.fstats.Snapshot().Total()-faultBase)
		}
		if s.dynamic {
			s.rec.SetChurn(obs.Churn{
				Registered: s.reg.Size(),
				Online:     len(s.runner.Online(t)),
				Cohort:     len(cohort),
				Joins:      joins,
				Leaves:     leaves,
			})
		}
		// All workers parked: evaluate (and checkpoint) safely.
		if err := s.runner.CompleteRound(); err != nil {
			return err
		}
	}
	return nil
}

// preRoundShardQuorum fails fast when the fault schedule already dooms too
// many leaves this round to meet ShardQuorum — the tier-plane mirror of the
// pre-round MinQuorum check, so a hopeless tree round aborts before any
// fan-out instead of burning its deadline.
func (s *Service) preRoundShardQuorum(t int) error {
	if s.tree == nil || s.opts.ShardQuorum <= 0 || !s.treeTol {
		return nil
	}
	shards := s.tree.topo.Shards
	doomed := 0
	for i := 0; i < shards; i++ {
		if s.opts.Faults.LeafCrashesAt(i, t) {
			doomed++
		}
	}
	if shards-doomed < s.opts.ShardQuorum {
		return fmt.Errorf("%w: round %d has %d of %d leaves scheduled to crash, quorum %d",
			ErrShardQuorumNotMet, t, doomed, shards, s.opts.ShardQuorum)
	}
	return nil
}

// cohortAt returns round t's cohort: the registered population intersected
// with the clients the availability trace puts online, sorted ascending.
func (s *Service) cohortAt(t int) []int {
	active := s.reg.Active()
	tr := s.runner.Availability()
	if tr == nil {
		return active
	}
	kept := make([]int, 0, len(active))
	for _, c := range active {
		if tr.Online(c, t) {
			kept = append(kept, c)
		}
	}
	return kept
}

// Join registers client id with the service over the wire: a hello envelope
// travels the client's own connection (beneath the chaos wrapper, so
// registration is never lost to injected faults) and lands in the registry
// at the next round barrier. Safe to call from another goroutine mid-run.
func (s *Service) Join(id int) error {
	return s.sendRegistration(id, transport.KindHello)
}

// Leave deregisters client id: the goodbye takes effect at the next round
// barrier, after which the client is no longer scheduled into cohorts.
func (s *Service) Leave(id int) error {
	return s.sendRegistration(id, transport.KindGoodbye)
}

func (s *Service) sendRegistration(id int, kind transport.Kind) error {
	p := s.peers[id]
	if p == nil {
		return fmt.Errorf("distrib: %v for id %d outside universe [0,%d)", kind, id, s.n)
	}
	e := &transport.Envelope{Kind: kind, From: id, To: -1, Round: -1}
	if err := p.conn.Inner().Send(e); err != nil {
		return fmt.Errorf("distrib: client %d %v: %w", id, kind, err)
	}
	return nil
}

// registerPopulation performs wire registration: every initial-population
// client sends a real hello, and the server blocks until all of them have
// arrived (pre-round, so the handshakes are unbilled — the ledger has no
// open row yet).
func (s *Service) registerPopulation() error {
	pop := s.opts.Population
	if pop == nil {
		pop = make([]int, s.n)
		for c := range pop {
			pop[c] = c
		}
	}
	for _, id := range pop {
		if err := s.Join(id); err != nil {
			return err
		}
	}
	joined := make(map[int]bool, len(pop))
	deadline := time.Now().Add(10 * time.Second)
	for len(joined) < len(pop) {
		wait := time.Until(deadline)
		if wait <= 0 {
			return fmt.Errorf("distrib: only %d of %d clients registered within 10s", len(joined), len(pop))
		}
		e, err := s.srx.recv(wait)
		if errors.Is(err, errRecvTimeout) {
			continue
		}
		if err != nil {
			return fmt.Errorf("distrib: await registrations: %w", err)
		}
		switch e.Kind {
		case transport.KindHello:
			s.reg.QueueJoin(e.From)
			if e.From >= 0 && e.From < s.n {
				joined[e.From] = true
			}
		case transport.KindGoodbye:
			s.reg.QueueLeave(e.From)
		}
		// Anything else arriving before the first round is leftover traffic;
		// round gating would discard it anyway.
	}
	return nil
}

// drainRegistrations empties whatever the server receiver already buffered,
// keeping only registration messages, then folds them in — the shutdown
// drain: a hello that reached the server before quit is reflected in the
// final status (and in the registry a save would capture) instead of being
// dropped with the receiver. Non-blocking.
func (s *Service) drainRegistrations() {
	// In tree mode the demultiplexer owns the server receiver, so inbound
	// registrations may sit either there (not yet routed) or in a leaf's
	// inbox; drain both planes.
	chans := []chan recvResult{s.srx.ch}
	if s.tree != nil {
		for _, lr := range s.tree.leafRx {
			chans = append(chans, lr.ch)
		}
	}
	for _, ch := range chans {
		s.drainRegistrationChan(ch)
	}
	s.applyFinal()
}

func (s *Service) drainRegistrationChan(ch chan recvResult) {
	for {
		select {
		case res, ok := <-ch:
			if !ok {
				return
			}
			if res.err != nil || res.e == nil {
				continue
			}
			switch res.e.Kind {
			case transport.KindHello:
				s.reg.QueueJoin(res.e.From)
			case transport.KindGoodbye:
				s.reg.QueueLeave(res.e.From)
			}
		default:
			return
		}
	}
}

func (s *Service) applyFinal() {
	s.reg.ApplyPending()
	s.setStatus(s.runner.CurrentRound())
}

// Status returns the latest barrier snapshot. Safe from any goroutine — the
// control plane's ping/status handler reads it while the round loop runs.
func (s *Service) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.status
	// Shard health is attached live rather than at the barrier, so an
	// operator polling mid-round sees a leaf sicken as it happens.
	if s.shardHealth != nil {
		st.Shards = append([]ShardHealth(nil), s.shardHealth...)
	}
	return st
}

func (s *Service) setStatus(t int) {
	cohort := s.cohortAt(t)
	st := Status{
		Algo:       s.runner.Name(),
		Round:      t,
		Registered: s.reg.Size(),
		Online:     len(s.runner.Online(t)),
		Cohort:     len(cohort),
	}
	s.mu.Lock()
	s.status = st
	s.mu.Unlock()
}

// noteShardDigest, noteShardRetry, and noteShardLost refresh the operator's
// per-shard health view as the root collects and the leaves retry.
func (s *Service) noteShardDigest(shard, t int) {
	s.mu.Lock()
	s.shardHealth[shard].LastDigestRound = t
	s.mu.Unlock()
}

func (s *Service) noteShardRetry(shard int) {
	s.mu.Lock()
	s.shardHealth[shard].Retries++
	s.mu.Unlock()
}

func (s *Service) noteShardLost(shard int) {
	s.mu.Lock()
	s.shardHealth[shard].Lost++
	s.mu.Unlock()
}

// Registry exposes the live registry (tests and the control plane).
func (s *Service) Registry() *Registry { return s.reg }

func (s *Service) closeTransport() {
	s.trOnce.Do(func() {
		s.tr.cleanup()
		if s.tree != nil {
			s.tree.upper.cleanup()
		}
	})
}

// Close tears the service down: parks no more rounds, stops every worker
// (client and leaf), and closes both transport fabrics. Idempotent.
func (s *Service) Close() {
	s.shutOnce.Do(func() {
		for _, ch := range s.start {
			close(ch)
		}
		for _, ch := range s.leafStart {
			close(ch)
		}
		s.srx.stop()
		if s.tree != nil {
			s.tree.rootRx.stop()
		}
	})
	s.closeTransport()
}
