package distrib

import (
	"errors"
	"fmt"
	"time"

	"fedpkd/internal/fl/engine"
	"fedpkd/internal/obs"
	"fedpkd/internal/transport"
)

// Root aggregator: the top of the two-tier tree. The root never touches
// per-client connections or uploads — it partitions the round's cohort into
// contiguous shard slices (index ranges over the cohort, no copies), encodes
// the round framing ONCE, hands each leaf its assignment, collects exactly
// one digest per shard, merges the per-shard partials, and runs the
// algorithm's Aggregate over the merged result. Every structure the root
// allocates is sized by the shard count, never the population — the
// structural gate in scripts/check.sh holds this file to that invariant.
//
// Because shards are contiguous id ranges, concatenating the per-shard
// sorted uploads in shard order reproduces the globally client-sorted slice,
// so the root's Aggregate call is bit-identical to the flat server's — the
// equivalence the tree goldens pin.

// rootRound runs the root's side of one synchronous tree round, returning
// the merged membership report and the round error exactly as serverRound
// does for the flat path.
func (s *Service) rootRound(t int, cohort []int) (*roundReport, error) {
	runner := s.runner
	hooks := runner.Hooks()
	rc := runner.Context(t)
	codec := runner.Codec()
	topo := s.tree.topo

	global, refParams := roundGlobal(t, runner)
	startPayload, hasGlobal, startRaw, err := encodeRoundStart(t, codec, global)
	if err != nil {
		return nil, err
	}
	cohorts := shardCohorts(cohort, s.n, topo.Shards)
	for i, members := range cohorts {
		sa := transport.ShardAssign{
			Round: t, Shard: i, Compact: topo.Compact,
			Start: startPayload, HasGlobal: hasGlobal, StartRaw: startRaw, Ref: refParams,
			Clients: make([]transport.ClientStart, len(members)),
		}
		for j, c := range members {
			sa.Clients[j] = transport.ClientStart{Client: c}
		}
		if err := s.sendAssign(&sa); err != nil {
			return nil, err
		}
	}

	digests, lostShards, err := s.collectDigests(t)
	if err != nil {
		return nil, err
	}
	report, parts, count, roundErr := s.mergeDigests(digests, cohorts, lostShards)

	if roundErr == nil && s.opts.ShardQuorum > 0 && topo.Shards-len(lostShards) < s.opts.ShardQuorum {
		roundErr = fmt.Errorf("%w: round %d merged %d of %d shard digests, quorum %d",
			ErrShardQuorumNotMet, t, topo.Shards-len(lostShards), topo.Shards, s.opts.ShardQuorum)
	}
	if roundErr == nil && s.opts.MinQuorum > 0 && count < s.opts.MinQuorum {
		roundErr = fmt.Errorf("%w: round %d aggregated %d of %d required uploads", ErrQuorumNotMet, t, count, s.opts.MinQuorum)
	}
	var bcast *engine.Payload
	if roundErr == nil && count > 0 {
		if topo.Compact {
			bcast, roundErr = runner.MergeCompact(rc, parts)
		} else {
			uploads, merr := runner.MergePartials(parts)
			if merr != nil {
				roundErr = merr
			} else {
				bcast, roundErr = hooks.Aggregate(rc, uploads)
			}
		}
	}
	payload, hasBroadcast, endRaw, roundErr, fatal := buildRoundEnd(t, codec, bcast, roundErr)
	if fatal != nil {
		return report, fatal
	}
	if err := s.sendShardEnds(t, payload, hasBroadcast, endRaw); err != nil {
		return report, err
	}
	return report, roundErr
}

// rootFlush is the root's side of one async flush: per-client retained
// globals ride inside the shard assignments, and staleness weighting runs at
// the root over the merged uploads — the exact computation asyncServerFlush
// performs on the flat path.
func (s *Service) rootFlush(t int, plan *engine.AsyncFlushPlan) (contributors []int, report *roundReport, err error) {
	runner := s.runner
	hooks := runner.Hooks()
	rc := runner.Context(t)
	codec := runner.Codec()
	topo := s.tree.topo

	idx := 0
	cohorts := shardCohorts(plan.Chosen, s.n, topo.Shards)
	for i, members := range cohorts {
		sa := transport.ShardAssign{Round: t, Shard: i, Flush: true,
			Clients: make([]transport.ClientStart, len(members))}
		for j, c := range members {
			// The dispatched payload was codec-applied at retention, so both
			// ends hold the same (quantized) values — the client's delta
			// reference.
			g := plan.Dispatched[idx]
			payload, hasGlobal, startRaw, werr := encodeRoundStart(t, codec, g)
			if werr != nil {
				return nil, nil, werr
			}
			cs := transport.ClientStart{Client: c, Start: payload, HasGlobal: hasGlobal, StartRaw: startRaw}
			if g != nil {
				cs.Ref = g.Params
			}
			sa.Clients[j] = cs
			idx++
		}
		if err := s.sendAssign(&sa); err != nil {
			return nil, nil, err
		}
	}

	digests, lostShards, err := s.collectDigests(t)
	if err != nil {
		return nil, nil, err
	}
	report, parts, count, roundErr := s.mergeDigests(digests, cohorts, lostShards)
	if roundErr == nil && s.opts.ShardQuorum > 0 && topo.Shards-len(lostShards) < s.opts.ShardQuorum {
		roundErr = fmt.Errorf("%w: flush %d merged %d of %d shard digests, quorum %d",
			ErrShardQuorumNotMet, t, topo.Shards-len(lostShards), topo.Shards, s.opts.ShardQuorum)
	}
	if roundErr == nil && s.opts.MinQuorum > 0 && count < s.opts.MinQuorum {
		roundErr = fmt.Errorf("%w: flush %d aggregated %d of %d required uploads", ErrQuorumNotMet, t, count, s.opts.MinQuorum)
	}
	var bcast *engine.Payload
	if roundErr == nil && count > 0 {
		uploads, merr := runner.MergePartials(parts)
		if merr != nil {
			roundErr = merr
		} else {
			for _, u := range uploads {
				contributors = append(contributors, u.Client)
			}
			bcast, roundErr = hooks.Aggregate(rc, runner.AsyncWeightUploads(rc, plan, uploads))
		}
	}
	payload, hasBroadcast, endRaw, roundErr, fatal := buildRoundEnd(t, codec, bcast, roundErr)
	if fatal != nil {
		return contributors, report, fatal
	}
	if err := s.sendShardEnds(t, payload, hasBroadcast, endRaw); err != nil {
		return contributors, report, err
	}
	return contributors, report, roundErr
}

// sendAssign ships one shard assignment down and bills the tier backhaul.
func (s *Service) sendAssign(sa *transport.ShardAssign) error {
	payload, err := transport.Encode(sa)
	if err != nil {
		return err
	}
	env := &transport.Envelope{Kind: transport.KindShardAssign, From: -1, To: sa.Shard, Round: sa.Round, Payload: payload}
	if err := s.tree.upper.server.Send(env); err != nil {
		return fmt.Errorf("distrib: root assign shard %d: %w", sa.Shard, err)
	}
	s.runner.Ledger().AddTierDown(env.WireSize())
	return nil
}

// sendShardEnds fans the encoded round close to every leaf with its billing
// facts, so each leaf can close its shard exactly as the flat server would
// have.
func (s *Service) sendShardEnds(t int, end []byte, hasBroadcast bool, endRaw int) error {
	for i := 0; i < s.tree.topo.Shards; i++ {
		se := transport.ShardEnd{Round: t, Shard: i, End: end, HasBroadcast: hasBroadcast, EndRaw: endRaw}
		payload, err := transport.Encode(se)
		if err != nil {
			return err
		}
		env := &transport.Envelope{Kind: transport.KindShardEnd, From: -1, To: i, Round: t, Payload: payload}
		if err := s.tree.upper.server.Send(env); err != nil {
			return fmt.Errorf("distrib: root close shard %d: %w", i, err)
		}
		s.runner.Ledger().AddTierDown(env.WireSize())
	}
	return nil
}

// rootWaitSlice bounds any single wait of the root's digest collect. Strict
// tree mode still waits for every digest indefinitely — but in slices, so no
// receive in this file ever blocks without a deadline (the structural gate in
// scripts/check.sh holds the root to that shape).
const rootWaitSlice = time.Second

// collectDigests awaits up to one digest per shard and returns the digests
// alongside the sorted list of lost shards. Strict tree mode (no LeafTimeout,
// no tier fault plan) keeps the old contract: every leaf digests every round
// and any tier-link protocol violation is an error. Tolerant tree mode makes
// leaves chaos subjects — shards the fault schedule crashes are never awaited
// (the deterministic failure detector, so a crash-heavy round does not burn
// the deadline), a corrupt or misrouted digest loses its shard, a duplicate
// digest is rejected, and whatever has not arrived when LeafTimeout expires
// is lost to a leaf timeout.
func (s *Service) collectDigests(t int) ([]*transport.ShardDigest, []int, error) {
	shards := s.tree.topo.Shards
	digests := make([]*transport.ShardDigest, shards)
	lost := make(map[int]bool, shards)
	await := shards
	for i := 0; i < shards; i++ {
		if s.treeTol && s.opts.Faults.LeafCrashesAt(i, t) {
			lost[i] = true
			await--
		}
	}
	markLost := func(shard int) {
		if shard >= 0 && shard < shards && !lost[shard] && digests[shard] == nil {
			lost[shard] = true
			await--
		}
	}
	var deadline time.Time
	if s.opts.LeafTimeout > 0 {
		deadline = time.Now().Add(s.opts.LeafTimeout)
	}
	for await > 0 {
		wait := rootWaitSlice
		if !deadline.IsZero() {
			until := time.Until(deadline)
			if until <= 0 {
				break
			}
			if until < wait {
				wait = until
			}
		}
		e, err := s.tree.rootRx.recv(wait)
		if errors.Is(err, errRecvTimeout) {
			continue // the loop head re-checks the deadline
		}
		var gone *peerGoneError
		if errors.As(err, &gone) && s.treeTol {
			markLost(gone.id)
			continue
		}
		if err != nil {
			return nil, nil, fmt.Errorf("distrib: root recv: %w", err)
		}
		if e.Kind != transport.KindShardDigest || e.Round != t {
			if s.treeTol {
				s.rs.stale.Add(1)
				continue
			}
			return nil, nil, fmt.Errorf("distrib: root got kind %v round %d during round %d", e.Kind, e.Round, t)
		}
		var d transport.ShardDigest
		if derr := transport.Decode(e.Payload, &d); derr != nil {
			if s.treeTol {
				s.rs.corrupt.Add(1)
				markLost(e.From)
				continue
			}
			return nil, nil, derr
		}
		if verr := d.Validate(); verr != nil {
			if s.treeTol {
				s.rs.corrupt.Add(1)
				markLost(e.From)
				continue
			}
			return nil, nil, verr
		}
		if d.Shard < 0 || d.Shard >= shards || d.Shard != e.From {
			if s.treeTol {
				s.rs.corrupt.Add(1)
				markLost(e.From)
				continue
			}
			return nil, nil, fmt.Errorf("distrib: digest labeled shard %d arrived from leaf %d", d.Shard, e.From)
		}
		if digests[d.Shard] != nil || lost[d.Shard] {
			if s.treeTol {
				s.rs.digestDups.Add(1)
				continue
			}
			return nil, nil, fmt.Errorf("distrib: duplicate digest from shard %d in round %d", d.Shard, t)
		}
		digests[d.Shard] = &d
		await--
		s.noteShardDigest(d.Shard, t)
	}
	var lostList []int
	for i := 0; i < shards; i++ {
		if digests[i] != nil {
			continue
		}
		if !lost[i] {
			// Neither crashed nor attributably corrupt: the digest simply
			// missed the deadline.
			s.rs.leafTimeouts.Add(1)
		}
		lostList = append(lostList, i)
		s.noteShardLost(i)
	}
	return digests, lostList, nil
}

// mergeDigests folds the shard digests into engine partials plus the
// round's merged membership report (Σ heard, concatenated missing — already
// ascending because shards are ascending contiguous ranges). A lost shard
// contributes a nil partial (engine.MergeExact and MergeCompact skip them)
// and its whole cohort slice to missing, so a degraded tree round reports
// exactly the clients the merge never saw. The first shard-order Err becomes
// the round error with its text intact, so the round close a tree run fans
// on failure carries the same message a flat run's would.
func (s *Service) mergeDigests(digests []*transport.ShardDigest, cohorts [][]int, lostShards []int) (*roundReport, []*engine.Partial, int, error) {
	stop := s.rec.Span(obs.PhaseRootMerge)
	defer stop()
	parts := make([]*engine.Partial, len(digests))
	report := &roundReport{missing: make([]int, 0), lostShards: lostShards}
	count := 0
	var roundErr error
	for i, d := range digests {
		if d == nil {
			report.missing = append(report.missing, cohorts[i]...)
			continue
		}
		report.cohort += d.Heard
		report.missing = append(report.missing, d.Missing...)
		if d.Err != "" {
			if roundErr == nil {
				roundErr = errors.New(d.Err)
			}
			continue
		}
		if s.tree.topo.Compact {
			p := &engine.Partial{Shard: i, Compact: true, Weight: d.Weight, Count: d.Count}
			if d.HasSum {
				sum, perr := d.Sum.ToPayload()
				if perr != nil {
					if roundErr == nil {
						roundErr = perr
					}
					continue
				}
				p.Sum = sum
			}
			parts[i] = p
			count += d.Count
			continue
		}
		p := engine.NewExactPartial(i)
		for _, su := range d.Uploads {
			pay, perr := su.Payload.ToPayload()
			if perr == nil {
				perr = s.runner.PartialReduce(p, engine.Upload{Client: su.Client, Payload: pay})
			}
			if perr != nil {
				if roundErr == nil {
					roundErr = perr
				}
				break
			}
		}
		parts[i] = p
		count += len(p.Uploads)
	}
	return report, parts, count, roundErr
}
