package distrib

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"fedpkd/internal/transport"
)

// This file is the strict-mode compatibility path: the one place in the
// package that still builds fixed-size, universe-wide structures. The
// simulator hosts every client endpoint in-process, so the transport fabric
// (one conn per id in [0,n)) is pre-built here even though the *registered*
// population is dynamic — a conn existing is not a client being registered,
// exactly as an open TCP socket is not a row in a production registry.
// Everything outside this file tracks clients through the Registry and
// id-keyed maps; scripts/check.sh enforces that split structurally.

// ParsePopulation parses a CLI population spec — comma-separated client ids
// like "0,2,5" — into a sorted id list for Options.Population. The empty
// spec returns nil: the whole fleet registers up front (legacy behavior).
// Duplicate or out-of-range ids are an error.
func ParsePopulation(spec string, n int) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	seen := make(map[int]bool)
	out := make([]int, 0, 8)
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		id, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("distrib: population id %q: %w", f, err)
		}
		if id < 0 || id >= n {
			return nil, fmt.Errorf("distrib: population id %d out of range [0,%d)", id, n)
		}
		if seen[id] {
			return nil, fmt.Errorf("distrib: duplicate population id %d", id)
		}
		seen[id] = true
		out = append(out, id)
	}
	sort.Ints(out)
	return out, nil
}

// transportParts is a built transport: the server's fan-in conn, one conn
// per client, an optional reconnect hook, and the teardown.
type transportParts struct {
	server  transport.Conn
	clients []transport.Conn
	redial  func(id int) (transport.Conn, error)
	cleanup func()
}

// buildTransport wires one server conn and n client conns. billControl is
// invoked with the wire size of reconnect handshakes so mid-run rejoins are
// accounted as control traffic.
func buildTransport(mode Mode, n int, billControl func(int)) (*transportParts, error) {
	switch mode {
	case ModeBus:
		bus := transport.NewBus(n, n*2)
		conns := make([]transport.Conn, n)
		for c := range conns {
			conns[c] = bus.ClientConn(c)
		}
		return &transportParts{server: bus.ServerConn(), clients: conns, cleanup: bus.Close}, nil
	case ModeTCP:
		srv, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		mux := newMuxConn(n)
		go acceptLoop(srv, mux, n, billControl)
		conns := make([]transport.Conn, n)
		for c := range conns {
			conn, err := dialAndJoin(srv.Addr(), c)
			if err != nil {
				mux.Close()
				srv.Close()
				return nil, err
			}
			conns[c] = conn
		}
		if err := mux.waitRegistered(n, 10*time.Second); err != nil {
			mux.Close()
			srv.Close()
			return nil, err
		}
		addr := srv.Addr()
		cleanup := func() {
			mux.Close()
			for _, c := range conns {
				c.Close()
			}
			srv.Close()
		}
		return &transportParts{
			server:  mux,
			clients: conns,
			redial:  func(id int) (transport.Conn, error) { return dialAndJoin(addr, id) },
			cleanup: cleanup,
		}, nil
	default:
		return nil, fmt.Errorf("distrib: unknown mode %q", mode)
	}
}

// acceptLoop serves attach handshakes for the run's lifetime, not just the
// initial fan-in, so a crash-restarting client can redial mid-run. Each
// accepted conn must open with a hello envelope naming the client id; the
// conn is registered with the mux before the ack is sent, so everything the
// server sends after the client observes the ack lands on the new conn.
//
// Attaching is transport plumbing, not registration: the hello consumed here
// only binds the socket to an id. A client registers with the *service* by
// sending a second hello on the established conn, which the mux pump
// delivers to the server's inbox like any other envelope.
func acceptLoop(srv *transport.Server, mux *muxConn, n int, billControl func(int)) {
	for {
		conn, err := srv.Accept()
		if err != nil {
			return
		}
		go func(conn transport.Conn) {
			hello, err := conn.Recv()
			if err != nil || hello.Kind != transport.KindHello || hello.From < 0 || hello.From >= n {
				conn.Close()
				return
			}
			ack := &transport.Envelope{Kind: transport.KindHello, From: -1, To: hello.From, Round: hello.Round}
			billControl(hello.WireSize() + ack.WireSize())
			mux.register(hello.From, conn)
			// A failed ack means the client is already redialing; the next
			// handshake will replace this registration.
			_ = conn.Send(ack)
		}(conn)
	}
}

// dialAndJoin connects to the server and completes the attach handshake:
// send a hello, wait for the hello ack. Non-hello envelopes arriving before
// the ack are leftovers of the round the client abandoned (the server
// registers the conn before acking), so they are discarded.
func dialAndJoin(addr string, id int) (transport.Conn, error) {
	conn, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	hello := &transport.Envelope{Kind: transport.KindHello, From: id, To: -1, Round: -1}
	if err := conn.Send(hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("distrib: client %d join: %w", id, err)
	}
	for {
		e, err := conn.Recv()
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("distrib: client %d await join ack: %w", id, err)
		}
		if e.Kind == transport.KindHello && e.To == id {
			return conn, nil
		}
	}
}
