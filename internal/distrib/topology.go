package distrib

import "fmt"

// Topology configures the aggregator tree. The zero value is the flat
// runtime: one server endpoint owns every client. With Shards > 1 the
// service builds a two-tier tree instead — one leaf aggregator per shard
// owning a contiguous client id range, stream-reducing its shard's uploads
// into a compact partial, and forwarding one shard digest to the root, which
// merges digests only and never touches per-client state. The client-side
// protocol and its ledger columns are byte-identical between the two shapes;
// the tree's leaf↔root backhaul is billed separately as tier traffic.
type Topology struct {
	// Shards is the number of leaf aggregators; values below 2 mean flat.
	Shards int
	// Depth is the tree depth including the root. Zero defaults to 2 when
	// Shards enables the tree. The distributed runtime builds depth-2 trees
	// (leaves + root); deeper trees are modeled by the hierarchy experiment,
	// which composes the same PartialReduce/MergePartials contract level by
	// level.
	Depth int
	// Compact opts into streaming reduction at the leaves: uploads are folded
	// into the algorithm's CompactReducer as they arrive and never retained
	// per client, making leaf memory O(1) in shard size. Floating-point
	// addition is not associative, so compact mode matches the flat fold to
	// ~1e-9 rather than bit-for-bit; leave it off (the exact mode) when
	// byte-identical replay matters. Requires the algorithm to implement
	// engine.CompactReducer and is incompatible with asynchronous flushes.
	Compact bool
}

// Enabled reports whether the options request a tree at all.
func (tp Topology) Enabled() bool { return tp.Shards > 1 }

// withDefaults resolves the zero Depth to the runtime's native two tiers.
func (tp Topology) withDefaults() Topology {
	if tp.Enabled() && tp.Depth == 0 {
		tp.Depth = 2
	}
	return tp
}

// validate rejects topologies the runtime cannot build for an n-client
// universe. Call after withDefaults.
func (tp Topology) validate(n int) error {
	if tp.Shards < 0 {
		return fmt.Errorf("distrib: negative shard count %d", tp.Shards)
	}
	if !tp.Enabled() {
		if tp.Compact {
			return fmt.Errorf("distrib: Compact reduction needs an aggregator tree (Shards > 1)")
		}
		return nil
	}
	if tp.Shards > n {
		return fmt.Errorf("distrib: %d shards for %d clients; each leaf needs a non-empty id range", tp.Shards, n)
	}
	if tp.Depth != 2 {
		return fmt.Errorf("distrib: tree depth %d unsupported: the distributed runtime builds two-tier trees (leaves + root); deeper hierarchies are modeled by the hierarchy experiment", tp.Depth)
	}
	return nil
}

// ShardOf maps a client id to its owning shard. Shards are contiguous id
// ranges — shard s owns [ceil(s·n/S), ceil((s+1)·n/S)) — which is the
// load-balanced partition with the property the exact reduction mode relies
// on: concatenating per-shard sorted uploads in ascending shard order yields
// the globally client-sorted list, so tree-reduce ≡ flat Aggregate
// bit-for-bit.
func ShardOf(id, n, shards int) int {
	return id * shards / n
}

// shardCohorts partitions a sorted cohort into per-shard sub-slices. The
// sub-slices share the cohort's backing array — the root partitions by index
// ranges and never copies per-client state.
func shardCohorts(cohort []int, n, shards int) [][]int {
	out := make([][]int, shards)
	lo := 0
	for s := 0; s < shards; s++ {
		hi := lo
		for hi < len(cohort) && ShardOf(cohort[hi], n, shards) == s {
			hi++
		}
		out[s] = cohort[lo:hi]
		lo = hi
	}
	return out
}
