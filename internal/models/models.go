// Package models is the model zoo: residual-MLP analogues of the ResNet
// family the paper trains (ResNet11/20/29 on clients, ResNet56 on the
// server). The paper uses the ResNet family purely as a capacity hierarchy;
// these builders reproduce that hierarchy — same ordering of depth and
// parameter count, a real feature-extractor/classifier split — on top of the
// pure-Go engine in internal/nn. See DESIGN.md §1.
package models

import (
	"fmt"
	"sort"

	"fedpkd/internal/nn"
	"fedpkd/internal/stats"
)

// Norm selects the normalization layer of an architecture.
type Norm string

// Supported normalizations. BatchNorm is the default (CIFAR ResNets carry
// it); LayerNorm exists for the normalization ablation — it keeps no
// running statistics, so weight averaging is statistics-free.
const (
	NormBatch Norm = "batch"
	NormLayer Norm = "layer"
	NormNone  Norm = "none"
)

// Spec describes one architecture in the zoo.
type Spec struct {
	// Name is the paper-facing architecture name, e.g. "ResNet20".
	Name string
	// Blocks is the number of residual blocks in the feature extractor.
	Blocks int
	// Hidden is the width of the feature space.
	Hidden int
	// Norm selects the normalization layer ("" means NormBatch).
	Norm Norm
}

// FeatureWidth is the shared feature-space dimension of every architecture
// in the zoo. CIFAR ResNets all end in a 64-channel global average pool, so
// the paper's heterogeneous fleets share one prototype space; we mirror that
// by varying depth only. Prototype aggregation (Eq. 8) depends on this.
const FeatureWidth = 48

// Registry of the architectures used in the paper's experiments. Depth
// ordering matches the paper: ResNet11 < ResNet20 < ResNet29 < ResNet56.
var registry = map[string]Spec{
	"ResNet11": {Name: "ResNet11", Blocks: 2, Hidden: FeatureWidth},
	"ResNet20": {Name: "ResNet20", Blocks: 3, Hidden: FeatureWidth},
	"ResNet29": {Name: "ResNet29", Blocks: 5, Hidden: FeatureWidth},
	"ResNet56": {Name: "ResNet56", Blocks: 9, Hidden: FeatureWidth},
	// LayerNorm variants for the normalization ablation.
	"ResNet20-LN": {Name: "ResNet20-LN", Blocks: 3, Hidden: FeatureWidth, Norm: NormLayer},
	"ResNet56-LN": {Name: "ResNet56-LN", Blocks: 9, Hidden: FeatureWidth, Norm: NormLayer},
}

// Names returns the registered architecture names in deterministic order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the spec for a registered architecture name.
func Lookup(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("models: unknown architecture %q (have %v)", name, Names())
	}
	return s, nil
}

// Build constructs a network for the given spec, input dimension, and class
// count. The feature extractor is a dense stem followed by Blocks residual
// blocks; the classifier head is a single linear layer, matching the paper's
// description of logits as "the output of the last fully connected layer".
func Build(rng *stats.RNG, spec Spec, inputDim, classes int) *nn.Network {
	if inputDim <= 0 || classes <= 0 {
		panic(fmt.Sprintf("models: invalid dims input=%d classes=%d", inputDim, classes))
	}
	// Dense→Norm→ReLU stem, then pre-activation-style residual blocks with
	// a normalization after each dense layer — mirroring the structure (and
	// the BatchNorm-under-averaging behaviour) of the CIFAR ResNets the
	// paper trains.
	norm := func() nn.Layer {
		switch spec.Norm {
		case NormLayer:
			return nn.NewLayerNorm(spec.Hidden)
		case NormNone:
			return nil
		default:
			return nn.NewBatchNorm(spec.Hidden)
		}
	}
	appendNorm := func(layers []nn.Layer) []nn.Layer {
		if l := norm(); l != nil {
			return append(layers, l)
		}
		return layers
	}
	layers := appendNorm([]nn.Layer{nn.NewDense(rng, inputDim, spec.Hidden)})
	layers = append(layers, nn.NewReLU())
	for i := 0; i < spec.Blocks; i++ {
		inner := appendNorm([]nn.Layer{nn.NewDense(rng, spec.Hidden, spec.Hidden)})
		inner = append(inner, nn.NewReLU())
		inner = appendNorm(append(inner, nn.NewDense(rng, spec.Hidden, spec.Hidden)))
		layers = append(layers, nn.NewResidual(nn.NewSequential(inner...)), nn.NewReLU())
	}
	body := nn.NewSequential(layers...)
	head := nn.NewSequential(nn.NewDense(rng, spec.Hidden, classes))
	return nn.NewNetwork(spec.Name, body, head)
}

// BuildNamed is Build with a registry lookup.
func BuildNamed(rng *stats.RNG, name string, inputDim, classes int) (*nn.Network, error) {
	spec, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return Build(rng, spec, inputDim, classes), nil
}

// HeterogeneousFleet returns the client architecture names for a fleet of n
// clients in the paper's heterogeneous-model setting: clients cycle through
// ResNet11, ResNet20, and ResNet29.
func HeterogeneousFleet(n int) []string {
	cycle := []string{"ResNet11", "ResNet20", "ResNet29"}
	names := make([]string, n)
	for i := range names {
		names[i] = cycle[i%len(cycle)]
	}
	return names
}

// HomogeneousFleet returns n copies of the paper's homogeneous client
// architecture, ResNet20.
func HomogeneousFleet(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = "ResNet20"
	}
	return names
}
