package models

import (
	"testing"

	"fedpkd/internal/nn"
	"fedpkd/internal/stats"
	"fedpkd/internal/tensor"
)

func TestRegistryContainsPaperModels(t *testing.T) {
	for _, name := range []string{"ResNet11", "ResNet20", "ResNet29", "ResNet56"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q) failed: %v", name, err)
		}
	}
	if _, err := Lookup("VGG16"); err == nil {
		t.Error("Lookup of unregistered model should fail")
	}
}

func TestCapacityOrderingMatchesPaper(t *testing.T) {
	rng := stats.NewRNG(1)
	order := []string{"ResNet11", "ResNet20", "ResNet29", "ResNet56"}
	var prev int
	for _, name := range order {
		net, err := BuildNamed(rng, name, 32, 10)
		if err != nil {
			t.Fatal(err)
		}
		n := net.ParamCount()
		if n <= prev {
			t.Errorf("%s has %d params, not larger than previous %d", name, n, prev)
		}
		prev = n
	}
}

func TestBuildForwardShapes(t *testing.T) {
	rng := stats.NewRNG(2)
	for _, name := range Names() {
		net, err := BuildNamed(rng, name, 16, 7)
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.Randn(rng, 5, 16, 1)
		logits := net.Logits(x)
		if logits.Rows != 5 || logits.Cols != 7 {
			t.Errorf("%s logits shape %dx%d, want 5x7", name, logits.Rows, logits.Cols)
		}
		spec, _ := Lookup(name)
		if got := net.FeatureDim(16); got != spec.Hidden {
			t.Errorf("%s feature dim %d, want %d", name, got, spec.Hidden)
		}
	}
}

func TestBuildTrainable(t *testing.T) {
	// A freshly built model must be able to fit a tiny dataset — catches
	// dead initializations or broken residual wiring.
	rng := stats.NewRNG(3)
	net, err := BuildNamed(rng, "ResNet11", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 30, 4, 1)
	labels := make([]int, 30)
	for i := range labels {
		labels[i] = i % 3
		// Make classes separable by shifting the first feature.
		x.Set(i, 0, x.At(i, 0)+float64(labels[i])*3)
	}
	opt := nn.NewAdam(0.01)
	for epoch := 0; epoch < 100; epoch++ {
		logits := net.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy(logits, labels)
		nn.ZeroGrads(net.Params())
		net.Backward(grad, nil)
		opt.Step(net.Params())
	}
	if acc := stats.Accuracy(net.Predict(x), labels); acc < 0.9 {
		t.Errorf("ResNet11 failed to fit a separable toy set: acc=%v", acc)
	}
}

func TestFleets(t *testing.T) {
	het := HeterogeneousFleet(7)
	if len(het) != 7 {
		t.Fatalf("HeterogeneousFleet(7) returned %d entries", len(het))
	}
	want := []string{"ResNet11", "ResNet20", "ResNet29", "ResNet11", "ResNet20", "ResNet29", "ResNet11"}
	for i := range want {
		if het[i] != want[i] {
			t.Errorf("het[%d] = %s, want %s", i, het[i], want[i])
		}
	}
	for _, name := range HomogeneousFleet(4) {
		if name != "ResNet20" {
			t.Errorf("HomogeneousFleet entry = %s, want ResNet20", name)
		}
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestBuildDeterministicBySeed(t *testing.T) {
	a, _ := BuildNamed(stats.NewRNG(5), "ResNet20", 8, 4)
	b, _ := BuildNamed(stats.NewRNG(5), "ResNet20", 8, 4)
	fa := nn.FlattenParams(a.Params())
	fb := nn.FlattenParams(b.Params())
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("same-seed builds must be identical")
		}
	}
}
