package fedpkd

import (
	"fedpkd/internal/fl"
	"fedpkd/internal/fl/engine"
)

// Asynchronous-execution facade. In async mode the server never waits for
// the full cohort: it aggregates a buffer of the first K arrivals, weights
// each update by its staleness (1/(1+s)^α), refreshes only the contributors,
// and moves on. Client arrivals run on a seeded logical clock — a pure
// function of (seed, client, model version) — so async runs replay
// byte-identically across repeats and across transports (DESIGN.md §11).

// Async-execution types, aliased for the public surface.
type (
	// AsyncOptions configures the barrier-free execution mode: buffer size,
	// staleness exponent, and the arrival schedule.
	AsyncOptions = engine.AsyncOptions
	// ArrivalSchedule is the seeded logical clock deciding when each client's
	// update arrives.
	ArrivalSchedule = engine.ArrivalSchedule
	// AsyncFlushRecord is one buffer flush in an async run's history.
	AsyncFlushRecord = fl.AsyncFlush
)

// SetAsync switches an algorithm's runs to the barrier-free async mode. Call
// before the first round (and, when resuming an async checkpoint, before
// Resume, with the checkpointed options). Works with every engine-backed
// algorithm, in-process or distributed.
func SetAsync(algo Algorithm, opts AsyncOptions) error {
	r, err := engine.Of(algo)
	if err != nil {
		return err
	}
	return r.SetAsync(opts)
}
