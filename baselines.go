package fedpkd

import (
	"fedpkd/internal/baselines"
)

// Baseline configuration types, aliased for the public surface.
type (
	// CommonConfig holds the knobs every baseline shares.
	CommonConfig = baselines.CommonConfig
	// FedAvgConfig parameterizes FedAvg and FedProx.
	FedAvgConfig = baselines.FedAvgConfig
	// FedMDConfig parameterizes FedMD and DS-FL.
	FedMDConfig = baselines.FedMDConfig
	// FedDFConfig parameterizes FedDF.
	FedDFConfig = baselines.FedDFConfig
	// FedETConfig parameterizes FedET.
	FedETConfig = baselines.FedETConfig
	// VanillaKDConfig parameterizes the plain KD-based method of the
	// paper's motivating experiments.
	VanillaKDConfig = baselines.VanillaKDConfig
	// FedProtoConfig parameterizes FedProto, the prototype-only method the
	// paper's related work contrasts FedPKD with.
	FedProtoConfig = baselines.FedProtoConfig
)

// NewFedAvg builds a FedAvg run (Eq. 1 weight averaging).
func NewFedAvg(cfg FedAvgConfig) (Algorithm, error) { return baselines.NewFedAvg(cfg) }

// NewFedProx builds a FedProx run (FedAvg plus a proximal term; Mu defaults
// to 0.01).
func NewFedProx(cfg FedAvgConfig) (Algorithm, error) { return baselines.NewFedProx(cfg) }

// NewFedMD builds a FedMD run (logit-consensus distillation, no server
// model).
func NewFedMD(cfg FedMDConfig) (Algorithm, error) { return baselines.NewFedMD(cfg) }

// NewDSFL builds a DS-FL run (FedMD with entropy-reduction aggregation).
func NewDSFL(cfg FedMDConfig) (Algorithm, error) { return baselines.NewDSFL(cfg) }

// NewFedDF builds a FedDF run (model fusion plus ensemble distillation).
func NewFedDF(cfg FedDFConfig) (Algorithm, error) { return baselines.NewFedDF(cfg) }

// NewFedET builds a FedET run (heterogeneous ensemble transfer into a large
// server model).
func NewFedET(cfg FedETConfig) (Algorithm, error) { return baselines.NewFedET(cfg) }

// NewVanillaKD builds the plain average-logit KD method (Fig. 1's "KD").
func NewVanillaKD(cfg VanillaKDConfig) (Algorithm, error) { return baselines.NewVanillaKD(cfg) }

// NewFedProto builds a FedProto run (prototype-only exchange, no server
// model, no public dataset).
func NewFedProto(cfg FedProtoConfig) (Algorithm, error) { return baselines.NewFedProto(cfg) }
