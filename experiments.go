package fedpkd

import (
	"fedpkd/internal/expt"
)

// Experiment-harness types, aliased for the public surface.
type (
	// ExperimentResult is one regenerated table/figure.
	ExperimentResult = expt.Result
	// ExperimentScale bundles the compute-budget knobs of a run.
	ExperimentScale = expt.Scale
	// AlgoOptions carries per-algorithm overrides for BuildAlgorithm.
	AlgoOptions = expt.AlgoOptions
)

// Predefined experiment scales.
var (
	// ScaleQuick finishes each experiment in seconds (tests, demos).
	ScaleQuick = expt.Quick
	// ScaleStd is the reporting scale used by EXPERIMENTS.md.
	ScaleStd = expt.Std
	// ScaleFull restores the paper's schedule (hours per configuration).
	ScaleFull = expt.Full
)

// Experiments returns the ids of every reproducible table and figure.
func Experiments() []string { return expt.ExperimentIDs() }

// RunExperiment regenerates one of the paper's tables or figures by id
// ("fig1".."fig10", "table1", "ablation-*").
func RunExperiment(id string, sc ExperimentScale, seed uint64) (*ExperimentResult, error) {
	return expt.Run(id, sc, seed)
}

// Algorithms lists every name BuildAlgorithm accepts.
func Algorithms() []string { return expt.Algorithms() }

// BuildAlgorithm constructs a named algorithm on an environment with the
// scale's schedule. Every algorithm it returns runs on the shared round
// engine, so the result works with Run, SetRecorder, and
// RunAlgorithmDistributed alike.
func BuildAlgorithm(name string, env *Env, sc ExperimentScale, seed uint64, hetero bool, opts AlgoOptions) (Algorithm, error) {
	return expt.BuildAlgorithmOpts(name, env, sc, seed, hetero, opts)
}
