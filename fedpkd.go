// Package fedpkd is a from-scratch Go implementation of FedPKD — "A
// Prototype-Based Knowledge Distillation Framework for Heterogeneous
// Federated Learning" (Lyu et al., ICDCS 2023) — together with every
// substrate it needs: a pure-Go neural-network engine, synthetic
// CIFAR-stand-in datasets with non-IID partitioners, all six baseline
// algorithms the paper compares against, communication accounting, and the
// experiment harness that regenerates the paper's tables and figures.
//
// This package is the public facade. A minimal run:
//
//	env, err := fedpkd.NewEnvironment(fedpkd.EnvConfig{
//		Spec:       fedpkd.SynthC10(42),
//		NumClients: 5,
//		TrainSize:  3000, TestSize: 1000, PublicSize: 600,
//		Partition: fedpkd.PartitionConfig{Kind: fedpkd.PartitionDirichlet, Alpha: 0.5},
//		Seed:      42,
//	})
//	// handle err
//	algo, err := fedpkd.NewFedPKD(fedpkd.Config{Env: env, Seed: 42})
//	// handle err
//	history, err := algo.Run(10)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package fedpkd

import (
	"fedpkd/internal/core"
	"fedpkd/internal/dataset"
	"fedpkd/internal/fl"
	"fedpkd/internal/models"
)

// Core environment and run types, aliased from the internal implementation
// so downstream users import only this package.
type (
	// Env is a materialized experiment environment: client datasets, the
	// unlabeled public set, and test sets.
	Env = fl.Env
	// EnvConfig describes an environment to build with NewEnvironment.
	EnvConfig = fl.EnvConfig
	// PartitionConfig selects and parameterizes the non-IID partitioner.
	PartitionConfig = fl.PartitionConfig
	// PartitionKind names a partitioning method.
	PartitionKind = fl.PartitionKind
	// ShardConfig parameterizes the shards partitioner.
	ShardConfig = dataset.ShardConfig
	// SyntheticSpec describes a synthetic classification task.
	SyntheticSpec = dataset.SyntheticSpec
	// History is the per-round metric trace of a run.
	History = fl.History
	// RoundMetrics is one round's measurements.
	RoundMetrics = fl.RoundMetrics
	// Algorithm is a runnable federated-learning method.
	Algorithm = fl.Algorithm

	// Config parameterizes FedPKD itself (see the internal/core docs for
	// the meaning of each knob; zero values take the paper's defaults).
	Config = core.Config
	// FedPKD is a configured FedPKD run.
	FedPKD = core.FedPKD
)

// Partition kinds.
const (
	PartitionIID       = fl.PartitionIID
	PartitionDirichlet = fl.PartitionDirichlet
	PartitionShards    = fl.PartitionShards
)

// FedPKD ablation and variant switches.
const (
	AggregationVariance = core.AggregationVariance
	AggregationMean     = core.AggregationMean
	FilterByPrototype   = core.FilterByPrototype
	FilterByConfidence  = core.FilterByConfidence
)

// SynthC10 returns the 10-class synthetic task standing in for CIFAR-10.
func SynthC10(seed uint64) SyntheticSpec { return dataset.SynthC10(seed) }

// SynthC100 returns the 100-class synthetic task standing in for CIFAR-100.
func SynthC100(seed uint64) SyntheticSpec { return dataset.SynthC100(seed) }

// NewEnvironment generates data and partitions it across clients.
func NewEnvironment(cfg EnvConfig) (*Env, error) { return fl.NewEnv(cfg) }

// NewFedPKD builds a FedPKD run; unset hyperparameters take the paper's
// defaults (B=32, η=0.001, θ=0.7, ε=δ=γ=0.5, epochs 15/10/40).
func NewFedPKD(cfg Config) (*FedPKD, error) { return core.New(cfg) }

// HomogeneousFleet returns n ResNet20 client architecture names (the
// paper's homogeneous setting).
func HomogeneousFleet(n int) []string { return models.HomogeneousFleet(n) }

// HeterogeneousFleet returns n client architecture names cycling through
// ResNet11/20/29 (the paper's heterogeneous setting).
func HeterogeneousFleet(n int) []string { return models.HeterogeneousFleet(n) }

// ModelNames returns the registered model-architecture names.
func ModelNames() []string { return models.Names() }
