package fedpkd

import (
	"testing"
)

// easySpec eases the synthetic task for fast facade tests.
func easySpec(seed uint64) SyntheticSpec {
	spec := SynthC10(seed)
	spec.Noise = 0.6
	return spec
}

func facadeEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnvironment(EnvConfig{
		Spec:       easySpec(7),
		NumClients: 2,
		TrainSize:  240, TestSize: 160, PublicSize: 80, LocalTestSize: 30,
		Partition: PartitionConfig{Kind: PartitionDirichlet, Alpha: 0.5},
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestFacadeFedPKD(t *testing.T) {
	env := facadeEnv(t)
	algo, err := NewFedPKD(Config{
		Env:                 env,
		ClientPrivateEpochs: 2,
		ClientPublicEpochs:  1,
		ServerEpochs:        2,
		Seed:                1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := algo.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Len() != 1 || hist.Algo != "FedPKD" {
		t.Errorf("history = %+v", hist)
	}
}

func TestFacadeBaselines(t *testing.T) {
	env := facadeEnv(t)
	common := CommonConfig{Env: env, Seed: 1}
	builders := map[string]func() (Algorithm, error){
		"FedAvg":  func() (Algorithm, error) { return NewFedAvg(FedAvgConfig{Common: common, LocalEpochs: 1}) },
		"FedProx": func() (Algorithm, error) { return NewFedProx(FedAvgConfig{Common: common, LocalEpochs: 1}) },
		"FedMD": func() (Algorithm, error) {
			return NewFedMD(FedMDConfig{Common: common, LocalEpochs: 1, DistillEpochs: 1})
		},
		"DS-FL": func() (Algorithm, error) {
			return NewDSFL(FedMDConfig{Common: common, LocalEpochs: 1, DistillEpochs: 1})
		},
		"FedDF": func() (Algorithm, error) {
			return NewFedDF(FedDFConfig{Common: common, LocalEpochs: 1, ServerEpochs: 1})
		},
		"FedET": func() (Algorithm, error) {
			return NewFedET(FedETConfig{Common: common, LocalEpochs: 1, ServerEpochs: 1})
		},
		"KD": func() (Algorithm, error) {
			return NewVanillaKD(VanillaKDConfig{Common: common, LocalEpochs: 1, ServerEpochs: 1})
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			algo, err := build()
			if err != nil {
				t.Fatal(err)
			}
			if algo.Name() != name {
				t.Errorf("Name = %q, want %q", algo.Name(), name)
			}
			if _, err := algo.Run(1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFacadeFleets(t *testing.T) {
	if len(HomogeneousFleet(3)) != 3 || len(HeterogeneousFleet(4)) != 4 {
		t.Error("fleet sizes wrong")
	}
	if len(ModelNames()) < 4 {
		t.Error("model registry too small")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := Experiments()
	if len(ids) < 10 {
		t.Errorf("only %d experiments registered", len(ids))
	}
	if _, err := RunExperiment("bogus", ScaleQuick, 1); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestFacadeTransportRoundtrip(t *testing.T) {
	bus := NewBus(1, 1)
	defer bus.Close()
	payload, err := EncodePayload(RoundUpload{Client: 2, HasPayload: true, Payload: WirePayload{Params: []float64{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.ClientConn(0).Send(&Envelope{Kind: KindUpload, From: 0, To: -1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	e, err := bus.ServerConn().Recv()
	if err != nil {
		t.Fatal(err)
	}
	var ru RoundUpload
	if err := DecodePayload(e.Payload, &ru); err != nil {
		t.Fatal(err)
	}
	if ru.Client != 2 {
		t.Errorf("decoded = %+v", ru)
	}
}
