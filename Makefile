GO ?= go

.PHONY: build test race check chaos bench fuzz cover serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full verification gate: build + vet + test + race.
check:
	sh scripts/check.sh

# cover prints per-package statement coverage. scripts/check.sh separately
# enforces the engine+distrib floor on a merged cross-package profile.
cover:
	$(GO) test -cover ./...

# chaos runs the seeded fault-injection suites under the race detector:
# client-plane crash/drop/dup/corrupt over bus and TCP, and the TestTreeChaos*
# tier suite (leaf crashes, digest faults, shard deadlines, degraded-tree
# rounds with deterministic replay).
chaos:
	$(GO) test -race -count=1 -run 'Chaos' ./internal/distrib/

# serve-smoke drives the long-lived service end to end: wire registration,
# the pause/ping/save/resume/quit control plane, a kill -9 mid-experiment,
# and a restart from the rolling checkpoint with a different population.
serve-smoke:
	sh scripts/serve_smoke.sh

bench:
	$(GO) test -bench=. -benchmem ./internal/tensor/
	$(GO) test -run=XXX -bench='BenchmarkFedPKDRound' -benchtime=2x .

# fuzz runs the decode fuzzers (transport round messages and comm packed
# sections) for a short budget each; raise FUZZTIME for deeper exploration.
# Both start from the checked-in seed corpora under testdata/fuzz/.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/transport/ -run=XXX -fuzz=FuzzDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/comm/ -run=XXX -fuzz=FuzzDecodeSection -fuzztime=$(FUZZTIME)
