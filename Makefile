GO ?= go

.PHONY: build test race check chaos bench fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full verification gate: build + vet + test + race.
check:
	sh scripts/check.sh

# chaos runs the seeded fault-injection suite (crash/drop/dup/corrupt over
# bus and TCP, multiple algorithms) under the race detector.
chaos:
	$(GO) test -race -count=1 -run 'Chaos' ./internal/distrib/

bench:
	$(GO) test -bench=. -benchmem ./internal/tensor/
	$(GO) test -run=XXX -bench='BenchmarkFedPKDRound' -benchtime=2x .

# fuzz runs the transport decode fuzzer for a short budget; raise FUZZTIME
# for deeper exploration.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/transport/ -run=XXX -fuzz=FuzzDecode -fuzztime=$(FUZZTIME)
