package fedpkd

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGoldens regenerates testdata/goldens/*.json from the current
// implementation. The committed goldens were captured from the pre-engine
// (per-algorithm Run/Round loop) implementation, so a passing run of
// TestGoldenHistories proves the unified round engine is a behavior-
// preserving refactor: every algorithm's accuracy trajectory and ledger
// byte accounting is bit-identical to the seed implementation.
var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/goldens from the current implementation")

// goldenEnv is the fixed environment every golden run shares. Generation is
// seed-driven and read-only during runs, so one environment serves all
// algorithms.
func goldenEnv(t *testing.T) *Env {
	t.Helper()
	spec := SynthC10(11)
	spec.Noise = 0.6
	env, err := NewEnvironment(EnvConfig{
		Spec:       spec,
		NumClients: 3,
		TrainSize:  360, TestSize: 200, PublicSize: 120, LocalTestSize: 40,
		Partition: PartitionConfig{Kind: PartitionDirichlet, Alpha: 0.5},
		Seed:      21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// goldenAlgos builds every algorithm variant at a fast fixed-seed schedule.
// Keyed by file name; order does not matter (each run is independent).
func goldenAlgos(env *Env) map[string]func() (Algorithm, error) {
	common := CommonConfig{Env: env, Seed: 5}
	return map[string]func() (Algorithm, error){
		"fedpkd": func() (Algorithm, error) {
			return NewFedPKD(Config{
				Env: env, ClientPrivateEpochs: 3, ClientPublicEpochs: 2, ServerEpochs: 4, Seed: 5,
			})
		},
		"fedavg": func() (Algorithm, error) {
			return NewFedAvg(FedAvgConfig{Common: common, LocalEpochs: 2})
		},
		"fedprox": func() (Algorithm, error) {
			return NewFedProx(FedAvgConfig{Common: common, LocalEpochs: 2})
		},
		"fedmd": func() (Algorithm, error) {
			return NewFedMD(FedMDConfig{Common: common, LocalEpochs: 2, DistillEpochs: 2})
		},
		"dsfl": func() (Algorithm, error) {
			return NewDSFL(FedMDConfig{Common: common, LocalEpochs: 2, DistillEpochs: 2})
		},
		"feddf": func() (Algorithm, error) {
			return NewFedDF(FedDFConfig{Common: common, LocalEpochs: 2, ServerEpochs: 2})
		},
		"fedet": func() (Algorithm, error) {
			return NewFedET(FedETConfig{Common: common, LocalEpochs: 2, ServerEpochs: 2})
		},
		"fedproto": func() (Algorithm, error) {
			return NewFedProto(FedProtoConfig{Common: common, LocalEpochs: 2})
		},
		"vanillakd": func() (Algorithm, error) {
			return NewVanillaKD(VanillaKDConfig{Common: common, LocalEpochs: 2, ServerEpochs: 2})
		},
	}
}

// goldenRounds is the schedule length: two rounds exercise both the cold
// (round 0, no global knowledge) and warm (round 1, prototypes/global state
// present) paths of every algorithm.
const goldenRounds = 2

// TestGoldenHistories runs each algorithm at a fixed seed and compares its
// serialized history — accuracy trajectory and cumulative ledger MB, which
// encodes the exact byte accounting — byte-for-byte against the committed
// golden. Run with -update-goldens to re-capture.
func TestGoldenHistories(t *testing.T) {
	env := goldenEnv(t)
	for name, build := range goldenAlgos(env) {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			algo, err := build()
			if err != nil {
				t.Fatal(err)
			}
			hist, err := algo.Run(goldenRounds)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(hist, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "goldens", name+".json")
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run go test -run TestGoldenHistories -update-goldens): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("history diverged from golden %s:\n got: %s\nwant: %s", path, got, want)
			}
		})
	}
}

// TestGoldenHistoriesExplicitFloat64Codec re-runs all nine algorithms with
// the wire codec explicitly pinned to float64raw and compares against the
// same goldens: selecting the default codec by name must be
// indistinguishable — byte-for-byte, ledger accounting included — from never
// touching the codec API at all.
func TestGoldenHistoriesExplicitFloat64Codec(t *testing.T) {
	env := goldenEnv(t)
	for name, build := range goldenAlgos(env) {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			algo, err := build()
			if err != nil {
				t.Fatal(err)
			}
			if err := SetWireCodec(algo, "float64raw"); err != nil {
				t.Fatal(err)
			}
			hist, err := algo.Run(goldenRounds)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(hist, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			want, err := os.ReadFile(filepath.Join("testdata", "goldens", name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("explicit float64raw codec diverged from golden for %s:\n got: %s\nwant: %s", name, got, want)
			}
		})
	}
}

// TestGoldenFedPKDInt8 pins the quantized trajectory: FedPKD under the int8
// wire codec at the golden seed, history and compressed-ledger totals
// byte-for-byte. This is the regression fence for the codec's numerics —
// any change to the quantization grid, the delta coding, or the pricing
// formulas moves this golden.
func TestGoldenFedPKDInt8(t *testing.T) {
	env := goldenEnv(t)
	algo, err := NewFedPKD(Config{
		Env: env, ClientPrivateEpochs: 3, ClientPublicEpochs: 2, ServerEpochs: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := SetWireCodec(algo, "int8"); err != nil {
		t.Fatal(err)
	}
	hist, err := algo.Run(goldenRounds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "goldens", "fedpkd_int8.json")
	if *updateGoldens {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -run TestGoldenFedPKDInt8 -update-goldens): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("int8 history diverged from golden:\n got: %s\nwant: %s", got, want)
	}
}
