#!/bin/sh
# check.sh is the repo's verification gate: build, vet, unit tests, then the
# race detector over every package. CI and `make check` both run this.
set -eu

cd "$(dirname "$0")/.."

echo ">> go build ./..."
go build ./...

echo ">> go vet ./..."
go vet ./...

echo ">> go test ./..."
go test ./...

echo ">> go test -race ./..."
go test -race ./...

# The kernel determinism contract (parallel == serial, bit for bit) must hold
# under real interleaving, so the equivalence and property suites run again
# with the race detector and two scheduler threads forcing the worker pool to
# actually overlap panels.
echo ">> GOMAXPROCS=2 go test -race ./internal/tensor/ (equivalence + property)"
GOMAXPROCS=2 go test -race -count=1 -run 'Equivalence|Property|Aliased|Parallel' ./internal/tensor/

# Compile-and-run every kernel benchmark once so perf-path-only code (panel
# kernels at benchmark shapes, scratch arena reuse) cannot rot unnoticed.
echo ">> go test -bench . -benchtime 1x ./internal/tensor/"
go test -run XXX -bench . -benchtime 1x ./internal/tensor/

echo "all checks passed"
