#!/bin/sh
# check.sh is the repo's verification gate: build, vet, unit tests, then the
# race detector over every package. CI and `make check` both run this.
set -eu

cd "$(dirname "$0")/.."

echo ">> go build ./..."
go build ./...

echo ">> go vet ./..."
go vet ./...

echo ">> go test ./..."
go test ./...

echo ">> go test -race ./..."
go test -race ./...

# The distributed driver fans every client into its own goroutine and shares
# algorithm hook state across the round barrier, so the multi-algorithm
# distrib suite must hold under the race detector specifically.
echo ">> go test -race -count=1 -run 'MatchesInProcess|RunOver' ./internal/distrib/"
go test -race -count=1 -run 'MatchesInProcess|RunOver' ./internal/distrib/

# Structural invariant of the round-engine refactor: no algorithm owns a
# round loop. The engine's Runner is the only Round() in the tree; algorithm
# packages supply phase hooks exclusively.
echo ">> structural check: no per-algorithm Round() declarations"
if grep -rnE 'func \([^)]*\) Round\(' internal/core/ internal/baselines/; then
    echo "FAIL: algorithm packages must not declare their own Round(); use engine hooks" >&2
    exit 1
fi

# The kernel determinism contract (parallel == serial, bit for bit) must hold
# under real interleaving, so the equivalence and property suites run again
# with the race detector and two scheduler threads forcing the worker pool to
# actually overlap panels.
echo ">> GOMAXPROCS=2 go test -race ./internal/tensor/ (equivalence + property)"
GOMAXPROCS=2 go test -race -count=1 -run 'Equivalence|Property|Aliased|Parallel' ./internal/tensor/

# Compile-and-run every kernel benchmark once so perf-path-only code (panel
# kernels at benchmark shapes, scratch arena reuse) cannot rot unnoticed.
echo ">> go test -bench . -benchtime 1x ./internal/tensor/"
go test -run XXX -bench . -benchtime 1x ./internal/tensor/

echo "all checks passed"
