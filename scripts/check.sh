#!/bin/sh
# check.sh is the repo's verification gate: build, vet, unit tests, then the
# race detector over every package. CI and `make check` both run this.
set -eu

cd "$(dirname "$0")/.."

echo ">> go build ./..."
go build ./...

echo ">> go vet ./..."
go vet ./...

echo ">> go test ./..."
go test ./...

echo ">> go test -race ./..."
go test -race ./...

# The distributed driver fans every client into its own goroutine and shares
# algorithm hook state across the round barrier, so the multi-algorithm
# distrib suite must hold under the race detector specifically.
echo ">> go test -race -count=1 -run 'MatchesInProcess|RunOver' ./internal/distrib/"
go test -race -count=1 -run 'MatchesInProcess|RunOver' ./internal/distrib/

# Seeded chaos suite: deterministic fault injection (crash/drop/dup/corrupt/
# sendfail) over bus and TCP with partial-cohort aggregation, retry, and
# quorum aborts. Crash/restart churns connections and receiver goroutines, so
# this too must hold under the race detector (DESIGN.md §9). The unanchored
# pattern also picks up the TestTreeChaos* tier suite: leaf crashes, digest
# drop/corrupt/dup/sendfail on the leaf↔root links, shard deadlines and
# quorum aborts, degraded-tree rounds, and byte-identical replay over bus and
# TCP (DESIGN.md §14).
echo ">> go test -race -count=1 -run 'Chaos' ./internal/distrib/"
go test -race -count=1 -run 'Chaos' ./internal/distrib/

# Structural invariant of the fault-tolerant root: the root's only receive is
# the deadline-sliced collector loop — a bare conn.Recv() or a zero-wait
# rx.recv(0) in root.go would block forever on a lost digest and turn a leaf
# failure back into a hung round (DESIGN.md §14).
echo ">> structural check: no deadline-less blocking receive in root.go"
if grep -nE '\.Recv\(\)|\.recv\(0\)' internal/distrib/root.go; then
    echo "FAIL: internal/distrib/root.go must receive digests only through the deadline-sliced collector; a blocking receive hangs the round on a lost shard (DESIGN.md §14)" >&2
    exit 1
fi

# Async determinism gate: same-seed barrier-free runs must replay to
# byte-identical histories and ledger totals — in-process at the root, and
# over the bus transport — while the flush fan-out runs under the race
# detector (DESIGN.md §11).
echo ">> go test -race -count=1 -run 'TestAsyncSameSeedReplay' ."
go test -race -count=1 -run 'TestAsyncSameSeedReplay' .
echo ">> go test -race -count=1 -run 'Async' ./internal/fl/engine/ ./internal/distrib/"
go test -race -count=1 -run 'Async' ./internal/fl/engine/ ./internal/distrib/

# Churn determinism gate: same seed + same availability trace must replay to
# byte-identical histories, ledger totals, and per-round cohorts — in-process
# and over the bus — while the registration fan-in runs under the race
# detector (DESIGN.md §12).
echo ">> go test -race -count=1 -run 'TestChurnSameSeedReplay|ServiceLeave|ServiceJoin|ServicePopulation' ./internal/distrib/"
go test -race -count=1 -run 'TestChurnSameSeedReplay|ServiceLeave|ServiceJoin|ServicePopulation' ./internal/distrib/

# Tree-equivalence gate: every algorithm run through the depth-2 aggregator
# tree must produce a byte-identical history and identical client-plane
# ledger totals to the flat server (bus everywhere, TCP for the two
# heavyweight paths), the compact mode must hold its 1e-9 tolerance, and the
# combined async+churn+tree golden must replay — all under the race detector,
# because the demultiplexer, leaf workers, and root collect are one more
# concurrent fan-out (DESIGN.md §13).
echo ">> go test -race -count=1 -run 'TestTreeMatchesFlat|TestTreeCompactFedAvgTolerance|TestTopologyValidation|TestGoldenAsyncChurnTree' ."
go test -race -count=1 -run 'TestTreeMatchesFlat|TestTreeCompactFedAvgTolerance|TestTopologyValidation|TestGoldenAsyncChurnTree' .

# Structural invariant of the aggregator tree: the root merges shard digests
# and never allocates population-sized state — no make() in root.go may be
# sized by the universe (s.n), the round cohort, or the flush plan; only
# shard-count structures are allowed. O(cohort) work belongs to the leaves
# (each O(shard)) or to engine.MergeExact, which reconstructs the flat
# Aggregate input the algorithm itself requires (DESIGN.md §13).
echo ">> structural check: root aggregator holds only per-shard state"
if grep -nE 'make\([^)]*(s\.n|len\(cohort\)|plan\.(Chosen|Dispatched))' internal/distrib/root.go; then
    echo "FAIL: internal/distrib/root.go allocated population-sized state; the root may only hold per-shard structures (DESIGN.md §13)" >&2
    exit 1
fi

# Coverage floor for the round engine and the distributed driver: their
# statements must stay >= 80% covered by the merged profile of the suites
# that exercise them (root package + their own). Async buffer selection,
# staleness weighting, and the validation ladder all live here; an uncovered
# branch in either package is where replay divergence hides.
echo ">> coverage floor: engine+distrib >= 80%"
covprof=$(mktemp)
go test -coverpkg=fedpkd/internal/fl/engine,fedpkd/internal/distrib \
    -coverprofile="$covprof" . ./internal/fl/engine/ ./internal/distrib/ > /dev/null
total=$(go tool cover -func="$covprof" | awk 'END { sub(/%/, "", $NF); print $NF }')
rm -f "$covprof"
echo "   engine+distrib merged coverage: ${total}%"
if awk "BEGIN { exit !($total < 80) }"; then
    echo "FAIL: engine+distrib coverage ${total}% is below the 80% floor" >&2
    exit 1
fi

# Structural invariant of the round-engine refactor: no algorithm owns a
# round loop. The engine's Runner is the only Round() in the tree; algorithm
# packages supply phase hooks exclusively.
echo ">> structural check: no per-algorithm Round() declarations"
if grep -rnE 'func \([^)]*\) Round\(' internal/core/ internal/baselines/; then
    echo "FAIL: algorithm packages must not declare their own Round(); use engine hooks" >&2
    exit 1
fi

# Resume-equivalence suite: for all nine algorithms, run-N straight and
# run-k/checkpoint/rebuild/resume must produce byte-identical histories
# (accuracy trajectory and ledger byte totals), including over the distrib
# transport and past a corrupted newest checkpoint — under the race detector,
# because resume re-enters the concurrent fan-out mid-run.
echo ">> go test -race -count=1 -run 'TestResumeEquivalenceGoldens|TestResumeFallsBack|TestDistributedResume' ."
go test -race -count=1 -run 'TestResumeEquivalenceGoldens|TestResumeFallsBack|TestDistributedResume' .

# Structural invariant of the service refactor: the distributed runtime
# samples cohorts from the live registry, so no type under internal/distrib
# may construct a fixed-size peer/conn/channel array keyed by fleet size —
# that shape is exactly the old fixed peer list. population.go is the one
# documented compatibility path (transport fabric construction); tests are
# exempt.
echo ">> structural check: no fixed-size peer arrays in internal/distrib"
if grep -rnE 'make\(\[\](\*clientPeer|transport\.Conn|chan ) ' internal/distrib/ \
    | grep -v 'population\.go' | grep -v '_test\.go'; then
    echo "FAIL: internal/distrib must key peers by registry membership (maps), not fixed-size arrays; only population.go (strict-mode transport fabric) is exempt (DESIGN.md §12)" >&2
    exit 1
fi

# The service's operator control plane must survive its full command cycle —
# wire registration, pause/ping/save/resume/quit, kill -9, restart from the
# rolling checkpoint with a different population (DESIGN.md §12).
echo ">> sh scripts/serve_smoke.sh"
sh scripts/serve_smoke.sh

# Structural invariant of the run-state contract: every nn.Layer and
# nn.Optimizer implementation must declare Snapshot/Restore. New types are
# registered by their compile-time interface assertions (var _ Layer = ...),
# so a type that compiles without the state methods can only exist if someone
# also skipped the assertion — this gate catches exactly that drift.
echo ">> structural check: every nn.Layer/nn.Optimizer has Snapshot and Restore"
types=$(grep -rhoE 'var _ (Layer|Optimizer) = \(\*[A-Za-z0-9_]+\)' internal/nn/*.go \
    | sed -E 's/.*\(\*([A-Za-z0-9_]+)\)/\1/' | sort -u)
for ty in $types; do
    for method in Snapshot Restore; do
        if ! grep -qE "func \([a-zA-Z0-9_]+ \*$ty\) $method\(" internal/nn/*.go; then
            echo "FAIL: nn type $ty lacks $method (run-state contract, DESIGN.md §8)" >&2
            exit 1
        fi
    done
done

# Wire-codec suite: packed-section round-trip/corruption properties in comm,
# and the transport-level codec negotiation + per-codec exactness split —
# under the race detector because coded payloads cross the concurrent
# client fan-out (DESIGN.md §10).
echo ">> go test -race -count=1 -run 'Codec|Section' ./internal/comm/ ./internal/transport/"
go test -race -count=1 -run 'Codec|Section' ./internal/comm/ ./internal/transport/

# The kernel determinism contract (parallel == serial, bit for bit) must hold
# under real interleaving, so the equivalence, property, and packed-NT/f32
# suites run again with the race detector and two scheduler threads forcing
# the worker pool to actually overlap panels.
echo ">> GOMAXPROCS=2 go test -race ./internal/tensor/ (equivalence + property + packed)"
GOMAXPROCS=2 go test -race -count=1 -run 'Equivalence|Property|Aliased|Parallel|Packed|F32' ./internal/tensor/

# Compile-and-run every kernel benchmark once so perf-path-only code (panel
# kernels at benchmark shapes, scratch arena reuse) cannot rot unnoticed.
echo ">> go test -bench . -benchtime 1x ./internal/tensor/"
go test -run XXX -bench . -benchtime 1x ./internal/tensor/

echo "all checks passed"
