#!/bin/sh
# check.sh is the repo's verification gate: build, vet, unit tests, then the
# race detector over every package. CI and `make check` both run this.
set -eu

cd "$(dirname "$0")/.."

echo ">> go build ./..."
go build ./...

echo ">> go vet ./..."
go vet ./...

echo ">> go test ./..."
go test ./...

echo ">> go test -race ./..."
go test -race ./...

echo "all checks passed"
