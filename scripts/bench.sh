#!/bin/sh
# bench.sh regenerates the benchmark snapshots.
#
# Default mode writes BENCH_kernels.json: the kernel and round benchmarks of
# the current tree, side by side with the frozen pre-kernel baseline. The
# baseline numbers were measured at the seed of this change (commit 83a70b7,
# naive row-by-row kernels and per-minibatch allocation) on the same host
# class the current numbers come from, using the best of three interleaved
# runs (-benchtime=20x rounds, 50x kernels). Keeping them as constants lets
# the script run without rebuilding the old commit; re-measure them from that
# commit if the host changes.
#
# `round` mode writes BENCH_round.json instead: the flat server's
# collect-then-sort reduction against the aggregator tree's per-shard
# inserts + validating merge, at 1k and 10k simulated clients — both
# measured from the current tree, no frozen baseline.
#
#   BENCHTIME=20x REPS=3 sh scripts/bench.sh
#   BENCHTIME=50x sh scripts/bench.sh round
set -eu

cd "$(dirname "$0")/.."

MODE="${1:-kernels}"
BENCHTIME="${BENCHTIME:-20x}"
REPS="${REPS:-3}"

ratio() {
	awk -v a="$1" -v b="$2" 'BEGIN {printf "%.2f", a / b}'
}

# best_of <bench regex> <pkg> — runs REPS times, prints the minimum ns/op.
best_of() {
	best=""
	i=0
	while [ "$i" -lt "$REPS" ]; do
		ns=$(go test -run XXX -bench "$1" -benchtime "$BENCHTIME" "$2" |
			awk -v pat="$1" '$1 ~ /^Benchmark/ && $0 ~ /ns\/op/ {print $3; exit}')
		if [ -z "$best" ] || [ "$ns" -lt "$best" ]; then
			best=$ns
		fi
		i=$((i + 1))
	done
	echo "$best"
}

if [ "$MODE" = "round" ]; then
	OUT="${OUT:-BENCH_round.json}"
	echo ">> round-reduction benchmarks, flat vs tree (best of $REPS at $BENCHTIME)" >&2
	FLAT_1K=$(best_of 'BenchmarkReduceFlat1k$' ./internal/fl/engine/)
	TREE_1K=$(best_of 'BenchmarkReduceTree1k$' ./internal/fl/engine/)
	FLAT_10K=$(best_of 'BenchmarkReduceFlat10k$' ./internal/fl/engine/)
	TREE_10K=$(best_of 'BenchmarkReduceTree10k$' ./internal/fl/engine/)
	echo "   1k:  flat $FLAT_1K ns/op, tree $TREE_1K ns/op" >&2
	echo "   10k: flat $FLAT_10K ns/op, tree $TREE_10K ns/op" >&2
	{
		echo '{'
		echo '  "description": "Round reduction, flat single-server sort vs two-tier tree (per-shard sorted inserts + MergeExact), simulated cohorts. Regenerate with scripts/bench.sh round.",'
		echo "  \"host\": \"$(go env GOOS)/$(go env GOARCH), $(nproc) cpu\","
		echo "  \"benchtime\": \"$BENCHTIME, best of $REPS\","
		echo '  "round": ['
		printf '    {"name": "Reduce/1k", "flat_ns_per_op": %s, "tree_ns_per_op": %s, "flat_over_tree": %s},\n' \
			"$FLAT_1K" "$TREE_1K" "$(ratio "$FLAT_1K" "$TREE_1K")"
		printf '    {"name": "Reduce/10k", "flat_ns_per_op": %s, "tree_ns_per_op": %s, "flat_over_tree": %s}\n' \
			"$FLAT_10K" "$TREE_10K" "$(ratio "$FLAT_10K" "$TREE_10K")"
		echo '  ]'
		echo '}'
	} >"$OUT"
	echo "wrote $OUT" >&2
	exit 0
fi
if [ "$MODE" != "kernels" ]; then
	echo "bench.sh: unknown mode '$MODE' (want kernels or round)" >&2
	exit 2
fi

OUT="${OUT:-BENCH_kernels.json}"

# Frozen baselines (ns/op) from the seed commit.
BASE_ROUND=174320969
BASE_ROUND_INSTR=190940604
BASE_MM_32=23575
BASE_MM_128=1306229
BASE_MM_256=11250245
BASE_TN_32=18821
BASE_TN_128=1224764
BASE_TN_256=11764876
BASE_NT_32=20259
BASE_NT_128=1265843
BASE_NT_256=11417507

echo ">> round benchmark (best of $REPS at $BENCHTIME)" >&2
ROUND=$(best_of 'BenchmarkFedPKDRound$' .)
echo "   BenchmarkFedPKDRound: $ROUND ns/op" >&2

echo ">> instrumented round benchmark (best of $REPS at $BENCHTIME)" >&2
ROUND_INSTR=$(best_of 'BenchmarkFedPKDRoundInstrumented$' .)
echo "   BenchmarkFedPKDRoundInstrumented: $ROUND_INSTR ns/op" >&2

echo ">> kernel benchmarks (best of $REPS at 50x)" >&2
KERN=""
i=0
while [ "$i" -lt "$REPS" ]; do
	KERN="$KERN
$(go test -run XXX -bench 'BenchmarkMatMul(|TN|NT)/' -benchtime 50x ./internal/tensor/)"
	i=$((i + 1))
done

# kern_ns <bench name> — minimum ns/op for one benchmark across the runs.
kern_ns() {
	echo "$KERN" | awk -v name="$1" \
		'$1 == name { if (best == "" || $3 + 0 < best + 0) best = $3 } END {print best}'
}

MM_32=$(kern_ns 'BenchmarkMatMul/32x32')
MM_128=$(kern_ns 'BenchmarkMatMul/128x128')
MM_256=$(kern_ns 'BenchmarkMatMul/256x256')
TN_32=$(kern_ns 'BenchmarkMatMulTN/32x32')
TN_128=$(kern_ns 'BenchmarkMatMulTN/128x128')
TN_256=$(kern_ns 'BenchmarkMatMulTN/256x256')
NT_32=$(kern_ns 'BenchmarkMatMulNT/32x32')
NT_128=$(kern_ns 'BenchmarkMatMulNT/128x128')
NT_256=$(kern_ns 'BenchmarkMatMulNT/256x256')

entry() {
	printf '    {"name": "%s", "baseline_ns_per_op": %s, "current_ns_per_op": %s, "speedup": %s}' \
		"$1" "$2" "$3" "$(ratio "$2" "$3")"
}

{
	echo '{'
	echo '  "description": "Kernel and round benchmarks vs the pre-kernel seed (commit 83a70b7). Regenerate with scripts/bench.sh.",'
	echo "  \"host\": \"$(go env GOOS)/$(go env GOARCH), $(nproc) cpu\","
	echo "  \"round_benchtime\": \"$BENCHTIME, best of $REPS\","
	echo '  "round": ['
	entry "BenchmarkFedPKDRound" "$BASE_ROUND" "$ROUND"
	echo ','
	entry "BenchmarkFedPKDRoundInstrumented" "$BASE_ROUND_INSTR" "$ROUND_INSTR"
	echo ''
	echo '  ],'
	echo '  "kernels": ['
	entry "MatMul/32x32" "$BASE_MM_32" "$MM_32"
	echo ','
	entry "MatMul/128x128" "$BASE_MM_128" "$MM_128"
	echo ','
	entry "MatMul/256x256" "$BASE_MM_256" "$MM_256"
	echo ','
	entry "MatMulTN/32x32" "$BASE_TN_32" "$TN_32"
	echo ','
	entry "MatMulTN/128x128" "$BASE_TN_128" "$TN_128"
	echo ','
	entry "MatMulTN/256x256" "$BASE_TN_256" "$TN_256"
	echo ','
	entry "MatMulNT/32x32" "$BASE_NT_32" "$NT_32"
	echo ','
	entry "MatMulNT/128x128" "$BASE_NT_128" "$NT_128"
	echo ','
	entry "MatMulNT/256x256" "$BASE_NT_256" "$NT_256"
	echo ''
	echo '  ]'
	echo '}'
} >"$OUT"

echo "wrote $OUT" >&2
