#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the long-lived service: start
# fedpkd-sim in serve mode over the bus transport (4 clients registering via
# wire hellos), drive the operator control plane (pause / ping / save /
# resume), kill -9 the service mid-experiment, restart it from the rolling
# checkpoint against a *different* registered population (3 clients), quit it
# cleanly, and finally resume once more in plain batch mode and assert the
# run completes. `make serve-smoke` and scripts/check.sh both run this.
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

BIN="$TMP/fedpkd-sim"
SOCK="$TMP/ctl.sock"
CKPT="$TMP/ckpt"

echo ">> building fedpkd-sim"
go build -o "$BIN" ./cmd/fedpkd-sim

ctl() { "$BIN" -ctl-addr "$SOCK" -ctl-cmd "$1"; }

# field NAME JSON — extract a numeric field from a one-line JSON response.
field() { printf '%s' "$2" | grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2; }
# boolfield NAME JSON — extract a true/false field.
boolfield() { printf '%s' "$2" | grep -o "\"$1\":\(true\|false\)" | head -1 | cut -d: -f2; }

# poll DESC CMD — retry CMD (a shell snippet evaluating to success) for ~20s.
poll() {
    desc=$1 i=0
    shift
    until "$@" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "FAIL: timed out waiting for: $desc" >&2
            exit 1
        fi
        sleep 0.2
    done
}

ctl_up() { ctl ping >/dev/null; }
registered_is() { [ "$(field registered "$(ctl ping)")" = "$1" ]; }
at_barrier() { [ "$(boolfield at_barrier "$(ctl ping)")" = "true" ]; }

# Flags shared by every leg: a small, fast FedAvg fleet over the bus.
run_flags() {
    echo "-algo FedAvg -task c10 -clients 4 -train 240 -public 80 -test 80 \
          -local-epochs 1 -server-epochs 1 -seed 7 -distributed bus \
          -trace-dir= -checkpoint-dir $CKPT"
}

echo ">> run 1: serve mode, 4 clients register over the bus"
# shellcheck disable=SC2046
"$BIN" $(run_flags) -rounds 500 -serve -ctl-addr "$SOCK" 2>"$TMP/run1.log" &
SRV_PID=$!

poll "control plane to come up" ctl_up
poll "all 4 wire registrations" registered_is 4
echo "   4 clients registered"

ctl pause >/dev/null
poll "service parked at a round barrier" at_barrier
out=$(ctl save)
ck=$(printf '%s' "$out" | grep -o '"checkpoint":"[^"]*"' | cut -d'"' -f4)
if [ -z "$ck" ] || [ ! -f "$ck" ]; then
    echo "FAIL: save returned no checkpoint (response: $out)" >&2
    exit 1
fi
echo "   paused at barrier, saved $ck"
ctl resume >/dev/null

# Let it train past the saved round, then kill it without ceremony: the
# rolling checkpoints are the only thing run 2 gets to restart from.
round_advanced() { [ "$(field round "$(ctl ping)")" -ge 2 ]; }
poll "a couple of rounds to complete" round_advanced
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
echo "   killed mid-experiment"

echo ">> run 2: restart from the rolling checkpoint with a different population"
# shellcheck disable=SC2046
"$BIN" $(run_flags) -rounds 500 -serve -ctl-addr "$SOCK" -resume "$CKPT" \
    -population 0,1,2 2>"$TMP/run2.log" &
SRV_PID=$!

poll "control plane to come up" ctl_up
poll "the 3-client population to register" registered_is 3
ctl pause >/dev/null
poll "service parked at a round barrier" at_barrier
out=$(ctl ping)
ROUND=$(field round "$out")
if [ "$ROUND" -lt 1 ]; then
    echo "FAIL: restarted service reports round $ROUND; the checkpoint restore went missing" >&2
    exit 1
fi
echo "   resumed at round $ROUND with 3 registered clients"
ctl quit >/dev/null
if ! wait "$SRV_PID"; then
    echo "FAIL: operator quit must be a clean exit (see $TMP/run2.log)" >&2
    cat "$TMP/run2.log" >&2
    exit 1
fi
SRV_PID=""
grep -q "stopped by operator quit" "$TMP/run2.log" || {
    echo "FAIL: run 2 did not acknowledge the quit" >&2
    exit 1
}
echo "   quit cleanly at round $ROUND"

echo ">> run 3: batch resume to completion"
TOTAL=$((ROUND + 2))
# shellcheck disable=SC2046
"$BIN" $(run_flags) -rounds "$TOTAL" -resume "$CKPT" >"$TMP/run3.out" 2>"$TMP/run3.log"
grep -q "resumed FedAvg at round" "$TMP/run3.log" || {
    echo "FAIL: run 3 did not resume from the checkpoint" >&2
    exit 1
}
grep -qE "^[[:space:]]*$((TOTAL - 1)) " "$TMP/run3.out" || {
    echo "FAIL: run 3 never reached round $((TOTAL - 1))" >&2
    cat "$TMP/run3.out" >&2
    exit 1
}
echo "   completed $TOTAL rounds"

echo "serve smoke passed"
