package fedpkd

import (
	"fedpkd/internal/tensor"
)

// Compute-layer controls, re-exported from internal/tensor so downstream
// users can size the kernel worker pool and read its counters without
// importing internal packages.
//
// The kernels are deterministic at every width: output rows are sharded
// into disjoint panels and every reduction runs in one fixed order, so a
// simulation produces bit-identical results whether it runs with 1 worker
// or 16 (see DESIGN.md, "Parallel tensor kernels").

// KernelStats is a snapshot of the tensor compute layer's process-wide
// counters.
type KernelStats = tensor.KernelStats

// SetKernelWorkers sets the tensor-kernel fan-out width. n <= 0 restores
// the default, which tracks GOMAXPROCS.
func SetKernelWorkers(n int) { tensor.SetWorkers(n) }

// KernelWorkers returns the current tensor-kernel fan-out width.
func KernelWorkers() int { return tensor.Workers() }

// ReadKernelStats returns a snapshot of the compute-layer counters.
func ReadKernelStats() KernelStats { return tensor.ReadKernelStats() }
