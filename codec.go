package fedpkd

import (
	"fedpkd/internal/comm"
	"fedpkd/internal/fl/engine"
)

// Wire-codec facade. Every payload an algorithm ships — public-set logits,
// class prototypes, model parameters — travels through a negotiated wire
// codec (DESIGN.md §10): "float64raw" (the default; byte-identical to the
// historical format), "float32", or "int8" (linear per-row quantization with
// CRC-guarded sections). The codec governs both the actual bytes on the
// distributed transport and the ledger's per-round accounting; compressing
// codecs additionally record the float64-equivalent byte counts in the
// ledger's raw columns so compression ratios come out of one run.

// WireCodecs lists the codec names SetWireCodec accepts.
func WireCodecs() []string {
	names := make([]string, 0, 3)
	for c := comm.Codec(0); c.Valid(); c++ {
		names = append(names, c.String())
	}
	return names
}

// SetWireCodec selects the payload wire codec for an algorithm's runs. Call
// it before the first round; quantization is part of the training trajectory
// (clients learn from what actually arrived), so switching codecs mid-run
// would make the history unreproducible.
func SetWireCodec(algo Algorithm, codec string) error {
	r, err := engine.Of(algo)
	if err != nil {
		return err
	}
	c, err := comm.ParseCodec(codec)
	if err != nil {
		return err
	}
	return r.SetCodec(c)
}
