package fedpkd

import (
	"fedpkd/internal/obs"
)

// Observability types, aliased from internal/obs so downstream users import
// only this package. A Recorder collects per-round phase timings, per-client
// training durations, wire-byte counters, and parallelism stats; attach one
// to any algorithm that implements Instrumented:
//
//	algo, _ := fedpkd.NewFedPKD(cfg)
//	rec := fedpkd.NewRecorder(algo.Name())
//	algo.SetRecorder(rec)
//	history, _ := algo.Run(rounds)
//	_ = rec.DumpFiles("results", "fedpkd")
type (
	// Recorder collects round-level traces; all methods are safe on a nil
	// receiver, so instrumented code pays one pointer test when disabled.
	Recorder = obs.Recorder
	// RoundTrace is one round's observability record.
	RoundTrace = obs.RoundTrace
	// DebugServer serves pprof and expvar endpoints for a running simulation.
	DebugServer = obs.DebugServer
	// Instrumented is implemented by every algorithm that accepts a Recorder.
	Instrumented = obs.Instrumented
)

// NewRecorder builds a recorder for the named algorithm.
func NewRecorder(algo string) *Recorder { return obs.NewRecorder(algo) }

// StartDebugServer exposes /debug/pprof/* and /debug/vars on addr (e.g.
// "localhost:6060"). Close the returned server to release the listener.
func StartDebugServer(addr string) (*DebugServer, error) { return obs.StartDebugServer(addr) }

// WriteRoundTracesJSONL writes traces as one JSON object per line.
var WriteRoundTracesJSONL = obs.WriteJSONL

// WriteRoundTracesCSV writes traces as a CSV table.
var WriteRoundTracesCSV = obs.WriteCSV
