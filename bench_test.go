package fedpkd

import (
	"testing"

	"fedpkd/internal/expt"
)

// Each Benchmark below regenerates one of the paper's tables or figures at
// the quick scale (one full regeneration per iteration; at default
// -benchtime these run once). The same experiments at reporting scale run
// via `go run ./cmd/fedbench -exp <id> -scale std`.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := expt.Run(id, expt.Quick, 42)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkFig1Motivation regenerates Fig. 1 (FedAvg vs plain KD, IID vs
// non-IID).
func BenchmarkFig1Motivation(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2LogitQuality regenerates Fig. 2 (per-label logit accuracy of
// class-split clients and their average).
func BenchmarkFig2LogitQuality(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3PublicSetSize regenerates Fig. 3 (accuracy and traffic vs
// public-set size).
func BenchmarkFig3PublicSetSize(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig5Homogeneous regenerates Fig. 5 (all seven algorithms across
// the non-IID grid, homogeneous models).
func BenchmarkFig5Homogeneous(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6Curves regenerates Fig. 6 (accuracy-vs-round curves, highly
// non-IID).
func BenchmarkFig6Curves(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7Heterogeneous regenerates Fig. 7 (heterogeneous fleets).
func BenchmarkFig7Heterogeneous(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTable1Communication regenerates Table I (MB to target accuracy).
func BenchmarkTable1Communication(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig8Ablations regenerates Fig. 8 (w/o prototypes, w/o
// filtering).
func BenchmarkFig8Ablations(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9SelectRatio regenerates Fig. 9 (θ sweep).
func BenchmarkFig9SelectRatio(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10LossMix regenerates Fig. 10 (δ sweep).
func BenchmarkFig10LossMix(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkAblationAggregation regenerates the extra design-choice ablation
// of DESIGN.md §4: variance-weighted vs mean logit aggregation.
func BenchmarkAblationAggregation(b *testing.B) { benchExperiment(b, "ablation-aggregation") }

// BenchmarkAblationFilterSignal regenerates the extra design-choice
// ablation of DESIGN.md §4: prototype-distance vs confidence filtering.
func BenchmarkAblationFilterSignal(b *testing.B) { benchExperiment(b, "ablation-filter-signal") }

// BenchmarkExtraFedProto regenerates the extension experiment contrasting
// dual knowledge with prototype-only (FedProto) and logit-only (FedMD)
// exchange.
func BenchmarkExtraFedProto(b *testing.B) { benchExperiment(b, "extra-fedproto") }

// BenchmarkAblationNormalization regenerates the substrate-fidelity
// ablation: BatchNorm vs LayerNorm models under FedAvg weight averaging.
func BenchmarkAblationNormalization(b *testing.B) { benchExperiment(b, "ablation-normalization") }

// BenchmarkFedPKDRound measures one FedPKD communication round in
// isolation (protocol overhead without the experiment grid).
func BenchmarkFedPKDRound(b *testing.B) {
	env, err := NewEnvironment(EnvConfig{
		Spec:       SynthC10(42),
		NumClients: 3,
		TrainSize:  600, TestSize: 300, PublicSize: 200, LocalTestSize: 50,
		Partition: PartitionConfig{Kind: PartitionDirichlet, Alpha: 0.3},
		Seed:      42,
	})
	if err != nil {
		b.Fatal(err)
	}
	algo, err := NewFedPKD(Config{
		Env:                 env,
		ClientPrivateEpochs: 2,
		ClientPublicEpochs:  1,
		ServerEpochs:        3,
		Seed:                42,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := algo.Round(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFedPKDRoundSerialKernels is BenchmarkFedPKDRound with the tensor
// worker pool pinned to one worker; comparing the two isolates what the
// kernel fan-out contributes on this host (on multi-core machines the
// default-width run should win, and determinism tests guarantee both
// produce bit-identical models).
func BenchmarkFedPKDRoundSerialKernels(b *testing.B) {
	SetKernelWorkers(1)
	defer SetKernelWorkers(0)
	env, err := NewEnvironment(EnvConfig{
		Spec:       SynthC10(42),
		NumClients: 3,
		TrainSize:  600, TestSize: 300, PublicSize: 200, LocalTestSize: 50,
		Partition: PartitionConfig{Kind: PartitionDirichlet, Alpha: 0.3},
		Seed:      42,
	})
	if err != nil {
		b.Fatal(err)
	}
	algo, err := NewFedPKD(Config{
		Env:                 env,
		ClientPrivateEpochs: 2,
		ClientPublicEpochs:  1,
		ServerEpochs:        3,
		Seed:                42,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := algo.Round(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFedPKDRoundInstrumented is BenchmarkFedPKDRound with a Recorder
// attached; comparing the two quantifies the observability overhead.
func BenchmarkFedPKDRoundInstrumented(b *testing.B) {
	env, err := NewEnvironment(EnvConfig{
		Spec:       SynthC10(42),
		NumClients: 3,
		TrainSize:  600, TestSize: 300, PublicSize: 200, LocalTestSize: 50,
		Partition: PartitionConfig{Kind: PartitionDirichlet, Alpha: 0.3},
		Seed:      42,
	})
	if err != nil {
		b.Fatal(err)
	}
	algo, err := NewFedPKD(Config{
		Env:                 env,
		ClientPrivateEpochs: 2,
		ClientPublicEpochs:  1,
		ServerEpochs:        3,
		Seed:                42,
	})
	if err != nil {
		b.Fatal(err)
	}
	rec := NewRecorder("FedPKD")
	algo.SetRecorder(rec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := algo.Round(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(rec.Traces()) == 0 && b.N > 1 {
		b.Fatal("recorder collected no traces")
	}
}

// BenchmarkDistributedRoundTCP measures one FedPKD round over real loopback
// TCP (wire encoding + transport included).
func BenchmarkDistributedRoundTCP(b *testing.B) {
	env, err := NewEnvironment(EnvConfig{
		Spec:       SynthC10(42),
		NumClients: 3,
		TrainSize:  300, TestSize: 200, PublicSize: 100, LocalTestSize: 40,
		Partition: PartitionConfig{Kind: PartitionDirichlet, Alpha: 0.3},
		Seed:      42,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DistributedConfig{
		Core: Config{
			Env:                 env,
			ClientPrivateEpochs: 1,
			ClientPublicEpochs:  1,
			ServerEpochs:        1,
			Seed:                42,
		},
		Mode: ModeTCP,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunDistributed(cfg, 1); err != nil {
			b.Fatal(err)
		}
	}
}
