#!/bin/sh
# Phase 2: remaining experiments, cheapest-and-highest-value first.
BIN=/root/repo/bin/fedbench
OUT=/root/repo/results
for exp in fig1 fig2 fig3 fig9; do
  echo "=== START $exp $(date +%H:%M:%S) ==="
  $BIN -exp "$exp" -scale std -seed 42 -out "$OUT" || echo "FAILED: $exp"
done
for exp in fig7 fig6 ablation-aggregation ablation-filter-signal ablation-normalization extra-fedproto; do
  echo "=== START $exp (quick) $(date +%H:%M:%S) ==="
  $BIN -exp "$exp" -scale quick -seed 42 -out "$OUT" || echo "FAILED: $exp"
done
echo "=== START fig10 $(date +%H:%M:%S) ==="
$BIN -exp fig10 -scale std -seed 42 -out "$OUT" || echo "FAILED: fig10"
echo "PHASE2-COMPLETE"
