#!/bin/sh
# Sequential std-scale regeneration of every experiment, critical first.
BIN=/root/repo/bin/fedbench
OUT=/root/repo/results
for exp in fig5 table1 fig8 fig7 fig9 fig10 fig1 fig2 fig3 fig6 ablation-aggregation ablation-filter-signal; do
  echo "=== START $exp $(date +%H:%M:%S) ==="
  $BIN -exp "$exp" -scale std -seed 42 -out "$OUT" || echo "FAILED: $exp"
done
echo "PIPELINE-COMPLETE"
