// Command calibrate measures the centralized (single-model, all-data)
// accuracy of the synthetic tasks across a noise grid. It is the tool used
// to pin the tasks' difficulty to the paper's CIFAR accuracy bands
// (DESIGN.md §1); rerun it after changing the generator.
//
//	calibrate -train 3000 -epochs 15
package main

import (
	"flag"
	"fmt"
	"os"

	"fedpkd/internal/dataset"
	"fedpkd/internal/fl"
	"fedpkd/internal/models"
	"fedpkd/internal/nn"
	"fedpkd/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		trainSize = flag.Int("train", 3000, "training samples")
		testSize  = flag.Int("test", 1000, "test samples")
		epochs    = flag.Int("epochs", 15, "training epochs")
		seed      = flag.Uint64("seed", 42, "seed")
	)
	flag.Parse()

	fmt.Println("centralized ResNet20 accuracy (difficulty calibration)")
	for _, probe := range []struct {
		name   string
		base   dataset.SyntheticSpec
		noises []float64
	}{
		{"SynthC10", dataset.SynthC10(*seed), []float64{0.8, 1.0, 1.2, 1.4}},
		{"SynthC100", dataset.SynthC100(*seed), []float64{0.6, 0.8, 1.0, 1.2}},
	} {
		fmt.Printf("\n%s (current preset noise %.2f):\n", probe.name, probe.base.Noise)
		for _, noise := range probe.noises {
			spec := probe.base
			spec.Noise = noise
			s := dataset.Generate(spec, *trainSize, *testSize, 0)
			net, err := models.BuildNamed(stats.NewRNG(1), "ResNet20", spec.InputDim, spec.Classes)
			if err != nil {
				return err
			}
			fl.TrainCE(net, nn.NewAdam(0.001), s.Train, stats.NewRNG(2), *epochs, 32)
			marker := ""
			if noise == probe.base.Noise {
				marker = "  <- preset"
			}
			fmt.Printf("  noise=%.2f: train=%.3f test=%.3f%s\n",
				noise, fl.Accuracy(net, s.Train), fl.Accuracy(net, s.Test), marker)
		}
	}
	return nil
}
