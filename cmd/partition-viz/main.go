// Command partition-viz renders the per-client label distribution of a
// non-IID partition as a text heat map, to inspect how skewed a setting is
// before running an experiment.
//
//	partition-viz -partition dirichlet -alpha 0.1
//	partition-viz -partition shards -k 3
package main

import (
	"flag"
	"fmt"
	"os"

	"fedpkd"
)

// shades maps a fraction of a client's data to a glyph.
func shade(frac float64) byte {
	switch {
	case frac == 0:
		return '.'
	case frac < 0.05:
		return '-'
	case frac < 0.15:
		return '+'
	case frac < 0.3:
		return '*'
	default:
		return '#'
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "partition-viz:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		partition = flag.String("partition", "dirichlet", "partition: iid, dirichlet, shards")
		alpha     = flag.Float64("alpha", 0.1, "Dirichlet concentration")
		k         = flag.Int("k", 3, "classes per client (shards)")
		clients   = flag.Int("clients", 8, "number of clients")
		seed      = flag.Uint64("seed", 42, "seed")
	)
	flag.Parse()

	var pcfg fedpkd.PartitionConfig
	switch *partition {
	case "iid":
		pcfg = fedpkd.PartitionConfig{Kind: fedpkd.PartitionIID}
	case "dirichlet":
		pcfg = fedpkd.PartitionConfig{Kind: fedpkd.PartitionDirichlet, Alpha: *alpha}
	case "shards":
		pcfg = fedpkd.PartitionConfig{Kind: fedpkd.PartitionShards, Shards: fedpkd.ShardConfig{
			ShardSize: 10, ShardsPerClient: 3000 / *clients / 10, ClassesPerClient: *k,
		}}
	default:
		return fmt.Errorf("unknown partition %q", *partition)
	}

	env, err := fedpkd.NewEnvironment(fedpkd.EnvConfig{
		Spec:       fedpkd.SynthC10(*seed),
		NumClients: *clients,
		TrainSize:  3000, TestSize: 100, PublicSize: 0,
		Partition: pcfg,
		Seed:      *seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("partition %s, %d clients, 10 classes\n", env.Cfg.Partition.String(), *clients)
	fmt.Println("(. none  - <5%  + <15%  * <30%  # >=30% of the client's samples)")
	fmt.Println()
	fmt.Println("          class: 0 1 2 3 4 5 6 7 8 9   samples")
	for c, d := range env.ClientData {
		hist := d.Histogram()
		row := make([]byte, 0, 20)
		for _, n := range hist {
			row = append(row, shade(float64(n)/float64(d.Len())), ' ')
		}
		fmt.Printf("client %2d:       %s  %7d\n", c, row, d.Len())
	}
	return nil
}
