// Command fedpkd-sim runs a single federated-learning simulation with full
// control over the algorithm, task, partition, fleet, and schedule, and
// prints the per-round history. Every algorithm runs on the shared round
// engine, so any of them can also execute distributed over a transport.
//
// Examples:
//
//	fedpkd-sim -algo FedPKD -task c10 -partition dirichlet -alpha 0.1 -rounds 10
//	fedpkd-sim -algo FedAvg -task c100 -partition shards -k 30
//	fedpkd-sim -algo FedMD -hetero -distributed tcp
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"fedpkd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fedpkd-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algoName  = flag.String("algo", "FedPKD", "algorithm: "+strings.Join(fedpkd.Algorithms(), ", "))
		task      = flag.String("task", "c10", "task: c10 or c100")
		partition = flag.String("partition", "dirichlet", "partition: iid, dirichlet, shards")
		alpha     = flag.Float64("alpha", 0.5, "Dirichlet concentration")
		k         = flag.Int("k", 3, "classes per client (shards partition)")
		clients   = flag.Int("clients", 5, "number of clients")
		rounds    = flag.Int("rounds", 6, "total communication rounds (a resumed run executes only the remainder)")
		trainSize = flag.Int("train", 3000, "training-pool size")
		pubSize   = flag.Int("public", 600, "public-set size")
		testSize  = flag.Int("test", 1000, "test-set size")
		seed      = flag.Uint64("seed", 42, "seed")
		hetero    = flag.Bool("hetero", false, "heterogeneous client fleet (ResNet11/20/29)")
		theta     = flag.Float64("theta", 0.7, "FedPKD select ratio θ")
		delta     = flag.Float64("delta", 0.5, "FedPKD server loss mix δ")
		codec     = flag.String("codec", "float64raw", "payload wire codec: "+strings.Join(fedpkd.WireCodecs(), ", "))
		distMode  = flag.String("distributed", "", "run the algorithm over a transport: bus or tcp")
		chaos     = flag.String("chaos", "", "inject deterministic faults into the distributed transport, e.g. drop=0.1,crash=0.2 (client keys: drop, delay, dup, corrupt, sendfail, crash, maxdelay; tier keys with -shards: tierdrop, tierdelay, tierdup, tiercorrupt, tiersendfail, leafcrash)")
		cliTmo    = flag.Duration("client-timeout", 0, "distributed straggler deadline per round; 0 waits forever (required >0 for lossy -chaos plans)")
		minQuorum = flag.Int("min-quorum", 0, "abort a distributed round that aggregated fewer uploads; 0 disables")
		leafTmo   = flag.Duration("leaf-timeout", 0, "root-side deadline per shard digest in tree mode; 0 waits forever (required >0 for lossy tier -chaos plans)")
		shardQ    = flag.Int("shard-quorum", 0, "abort a tree-mode round that merged fewer shard digests; 0 disables")
		localEp   = flag.Int("local-epochs", 5, "baseline local epochs / FedPKD private epochs")
		serverEp  = flag.Int("server-epochs", 8, "server / distill epochs")
		traceDir  = flag.String("trace-dir", "results", "directory for round-trace JSONL/CSV output (empty disables tracing)")
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
		progress  = flag.Bool("progress", true, "print a per-round progress line to stderr (requires tracing)")
		workers   = flag.Int("workers", 0, "tensor-kernel worker fan-out; 0 tracks GOMAXPROCS (results are bit-identical at any width)")
		ckptDir   = flag.String("checkpoint-dir", "", "write a durable run checkpoint into this directory every -checkpoint-every rounds")
		ckptEvery = flag.Int("checkpoint-every", 1, "checkpoint cadence in rounds (with -checkpoint-dir)")
		resume    = flag.String("resume", "", "resume from a checkpoint file, or from the newest valid checkpoint in a directory")
		async     = flag.Bool("async", false, "barrier-free rounds: each round flushes a buffer of the K earliest arrivals, staleness-weighted")
		bufSize   = flag.Int("buffer-size", 0, "async buffer size K; 0 defaults to half the fleet (requires -async)")
		stalAlpha = flag.Float64("staleness-alpha", 0.5, "async staleness exponent α in 1/(1+s)^α (requires -async)")
		serveMode = flag.Bool("serve", false, "run as a long-lived service with an operator control plane (requires -distributed, -checkpoint-dir, -ctl-addr)")
		ctlAddr   = flag.String("ctl-addr", "", "control-plane socket: a unix socket path (contains /) or a TCP host:port")
		ctlCmd    = flag.String("ctl-cmd", "", "send one command (pause, ping, status, resume, save, quit) to the service at -ctl-addr and exit")
		availSpec = flag.String("availability", "", "seeded diurnal availability trace, e.g. period=24,min=0.5,max=0.9,seed=7; cohorts sample from online clients")
		popSpec   = flag.String("population", "", "comma-separated client ids registered at start, e.g. 0,1,2 (requires -distributed); others may join mid-run")
		shards    = flag.Int("shards", 0, "aggregator-tree leaf count; >1 reduces uploads through a two-tier tree (requires -distributed), 0/1 keeps the flat server")
		treeDepth = flag.Int("tree-depth", 0, "aggregator-tree depth; 0 defaults to 2 when -shards > 1 (only 2 is supported by the runtime)")
	)
	flag.Parse()

	// Client mode: talk to a running service's control plane and exit.
	if *ctlCmd != "" {
		if *ctlAddr == "" {
			return fmt.Errorf("-ctl-cmd requires -ctl-addr")
		}
		resp, err := fedpkd.ControlSend(*ctlAddr, *ctlCmd, 10*time.Second)
		if err != nil {
			return err
		}
		out, err := json.Marshal(resp)
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		if !resp.OK {
			return fmt.Errorf("control command %q failed: %s", *ctlCmd, resp.Err)
		}
		return nil
	}
	if *serveMode && (*distMode == "" || *ckptDir == "" || *ctlAddr == "") {
		return fmt.Errorf("-serve requires -distributed, -checkpoint-dir, and -ctl-addr")
	}
	if *ctlAddr != "" && !*serveMode {
		return fmt.Errorf("-ctl-addr requires -serve (or -ctl-cmd)")
	}
	if *popSpec != "" && *distMode == "" {
		return fmt.Errorf("-population requires -distributed")
	}
	if (*shards > 1 || *treeDepth != 0) && *distMode == "" {
		return fmt.Errorf("-shards and -tree-depth require -distributed")
	}
	if (*leafTmo != 0 || *shardQ != 0) && *shards <= 1 {
		return fmt.Errorf("-leaf-timeout and -shard-quorum require -shards > 1")
	}

	fedpkd.SetKernelWorkers(*workers)

	if *debugAddr != "" {
		dbg, err := fedpkd.StartDebugServer(*debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/\n", dbg.Addr())
	}

	spec := fedpkd.SynthC10(*seed)
	if *task == "c100" {
		spec = fedpkd.SynthC100(*seed)
	} else if *task != "c10" {
		return fmt.Errorf("unknown task %q", *task)
	}

	var pcfg fedpkd.PartitionConfig
	switch *partition {
	case "iid":
		pcfg = fedpkd.PartitionConfig{Kind: fedpkd.PartitionIID}
	case "dirichlet":
		pcfg = fedpkd.PartitionConfig{Kind: fedpkd.PartitionDirichlet, Alpha: *alpha}
	case "shards":
		perClient := *trainSize / *clients
		pcfg = fedpkd.PartitionConfig{Kind: fedpkd.PartitionShards, Shards: fedpkd.ShardConfig{
			ShardSize: 10, ShardsPerClient: perClient / 10, ClassesPerClient: *k,
		}}
	default:
		return fmt.Errorf("unknown partition %q", *partition)
	}

	env, err := fedpkd.NewEnvironment(fedpkd.EnvConfig{
		Spec:       spec,
		NumClients: *clients,
		TrainSize:  *trainSize, TestSize: *testSize, PublicSize: *pubSize,
		LocalTestSize: 100,
		Partition:     pcfg,
		Seed:          *seed,
	})
	if err != nil {
		return err
	}

	// Project the flag schedule onto an experiment scale so algorithm
	// construction goes through the same builder fedbench uses.
	sc := fedpkd.ScaleQuick
	sc.NumClients = *clients
	sc.Rounds = *rounds
	sc.PKDPrivateEpochs, sc.PKDPublicEpochs, sc.PKDServerEpochs = *localEp, 3, *serverEp
	sc.LocalEpochs = *localEp
	sc.DistillEpochs = *serverEp
	sc.FedDFLocalEpochs, sc.FedDFServerEpochs = *localEp, 2
	sc.FedETServerEpochs = *serverEp
	sc.VanillaServerEpoch = *serverEp

	algo, err := fedpkd.BuildAlgorithm(*algoName, env, sc, *seed, *hetero,
		fedpkd.AlgoOptions{Theta: *theta, Delta: *delta})
	if err != nil {
		return err
	}
	if err := fedpkd.SetWireCodec(algo, *codec); err != nil {
		return err
	}

	if !*async && (*bufSize != 0 || *stalAlpha != 0.5) {
		return fmt.Errorf("-buffer-size and -staleness-alpha require -async")
	}
	if *async {
		k := *bufSize
		if k <= 0 {
			k = (*clients + 1) / 2
		}
		err := fedpkd.SetAsync(algo, fedpkd.AsyncOptions{
			BufferSize:     k,
			StalenessAlpha: *stalAlpha,
			Schedule:       fedpkd.ArrivalSchedule{Seed: *seed},
		})
		if err != nil {
			return err
		}
	}

	if *resume != "" {
		warnings, err := fedpkd.ResumeAlgorithm(algo, *resume)
		for _, w := range warnings {
			fmt.Fprintln(os.Stderr, "fedpkd-sim:", w)
		}
		if err != nil {
			return fmt.Errorf("resume from %s: %w", *resume, err)
		}
		done, _ := fedpkd.CompletedRounds(algo)
		fmt.Fprintf(os.Stderr, "resumed %s at round %d from %s\n", *algoName, done, *resume)
	}
	if *ckptDir != "" {
		if err := fedpkd.SetCheckpointPolicy(algo, *ckptDir, *ckptEvery); err != nil {
			return err
		}
	}

	// The availability trace is run configuration, not checkpointed state, so
	// it is (re)applied after any resume.
	avail, err := fedpkd.ParseAvailability(*availSpec, *seed)
	if err != nil {
		return err
	}
	if avail != nil {
		if err := fedpkd.SetAvailability(algo, avail); err != nil {
			return err
		}
	}
	var population []int
	if *popSpec != "" {
		if population, err = fedpkd.ParsePopulation(*popSpec, *clients); err != nil {
			return err
		}
	}

	var rec *fedpkd.Recorder
	if *traceDir != "" {
		rec = fedpkd.NewRecorder(*algoName)
		if *progress {
			rec.OnRoundEnd(func(tr fedpkd.RoundTrace) {
				fmt.Fprintln(os.Stderr, tr.ProgressLine())
			})
		}
	}

	var history *fedpkd.History
	if *distMode != "" {
		plan, err := fedpkd.ParseFaultPlan(*chaos, *seed)
		if err != nil {
			return err
		}
		opts := fedpkd.DistributedOptions{
			Mode:          fedpkd.DistributedMode(*distMode),
			Recorder:      rec,
			ClientTimeout: *cliTmo,
			MinQuorum:     *minQuorum,
			LeafTimeout:   *leafTmo,
			ShardQuorum:   *shardQ,
			Faults:        plan,
			Population:    population,
			Topology:      fedpkd.Topology{Shards: *shards, Depth: *treeDepth},
		}
		var gate *fedpkd.ControlGate
		if *serveMode {
			// Serve mode: registration arrives as observable wire traffic, the
			// control gate runs at every round barrier, and the operator's save
			// command writes through the same rolling-checkpoint path the
			// -checkpoint-every policy uses.
			gate = fedpkd.NewControlGate(func() (string, error) {
				return fedpkd.SaveCheckpoint(algo, *ckptDir)
			})
			opts.Barrier = gate.Barrier
			opts.WireRegistration = true
			if *shards > 1 {
				// Tree mode: the demultiplexer owns the fan-in socket, so
				// registration cannot arrive as wire traffic. The registry is
				// seeded from -population (or the whole fleet) instead.
				opts.WireRegistration = false
				fmt.Fprintln(os.Stderr, "fedpkd-sim: tree-serve mode pre-registers the fleet (wire registration needs the flat fan-in)")
			}
			var svcMu sync.Mutex
			var svc *fedpkd.Service
			opts.OnService = func(s *fedpkd.Service) {
				svcMu.Lock()
				svc = s
				svcMu.Unlock()
			}
			srv, err := fedpkd.ServeControl(*ctlAddr, gate, func() fedpkd.ControlStatus {
				svcMu.Lock()
				s := svc
				svcMu.Unlock()
				st := fedpkd.ControlStatus{Algo: *algoName, Rounds: *rounds}
				if s != nil {
					ss := s.Status()
					st.Algo, st.Round = ss.Algo, ss.Round
					st.Registered, st.Online, st.Cohort = ss.Registered, ss.Online, ss.Cohort
					for _, sh := range ss.Shards {
						st.Shards = append(st.Shards, fedpkd.ControlShardHealth{
							Shard:           sh.Shard,
							LastDigestRound: sh.LastDigestRound,
							Retries:         sh.Retries,
							Lost:            sh.Lost,
						})
					}
				}
				return st
			})
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "serving %s with control plane on %s\n", *algoName, srv.Addr())
		}
		history, err = fedpkd.RunAlgorithmDistributedUntilOpts(algo, *rounds, opts)
		if gate != nil {
			gate.Finish()
		}
		if errors.Is(err, fedpkd.ErrControlQuit) {
			fmt.Fprintln(os.Stderr, "stopped by operator quit; resume later with -resume")
			err = nil
		}
		if err != nil {
			return err
		}
	} else if *chaos != "" || *cliTmo != 0 || *minQuorum != 0 {
		return fmt.Errorf("-chaos, -client-timeout, and -min-quorum require -distributed")
	} else {
		if ins, ok := algo.(fedpkd.Instrumented); ok {
			ins.SetRecorder(rec)
		}
		history, err = fedpkd.RunAlgorithmUntil(algo, *rounds)
		if err != nil {
			return err
		}
	}

	if rec != nil {
		prefix := strings.ToLower(strings.ReplaceAll(*algoName, "-", ""))
		jsonlPath, csvPath, err := rec.DumpFiles(*traceDir, prefix)
		if err != nil {
			return fmt.Errorf("write traces: %w", err)
		}
		fmt.Fprintf(os.Stderr, "round traces written to %s and %s\n", jsonlPath, csvPath)
	}

	fmt.Printf("%s on %s [%s], %d clients\n\n", history.Algo, history.Dataset, history.Setting, *clients)
	fmt.Println("round  S_acc   C_acc   cumulative MB")
	for _, r := range history.Rounds {
		s, c := "  N/A", "  N/A"
		if r.ServerAcc >= 0 {
			s = fmt.Sprintf("%5.1f%%", r.ServerAcc*100)
		}
		if r.ClientAcc >= 0 {
			c = fmt.Sprintf("%5.1f%%", r.ClientAcc*100)
		}
		fmt.Printf("%5d  %s  %s  %10.2f\n", r.Round, s, c, r.CumulativeMB)
	}
	if len(history.Flushes) > 0 {
		fmt.Printf("\nasync: %d buffer flush(es), simulated wall-clock %d ticks\n",
			len(history.Flushes), history.FinalClock())
	}
	if n := history.DegradedCount(); n > 0 {
		fmt.Printf("\n%d partial round(s):\n", n)
		for _, d := range history.Degraded {
			fmt.Printf("  round %d aggregated %d/%d clients (missing %v)\n", d.Round, d.Cohort, d.Expected, d.Missing)
		}
	}
	return nil
}
