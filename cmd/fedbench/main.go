// Command fedbench regenerates the paper's tables and figures.
//
// Usage:
//
//	fedbench -exp fig5 -scale std -seed 42 -out results/
//	fedbench -exp all -scale quick
//	fedbench -list
//
// Each experiment prints the same rows/series the paper reports and, with
// -out, also writes CSV files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fedpkd/internal/expt"
	"fedpkd/internal/faults"
	"fedpkd/internal/obs"
	"fedpkd/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fedbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expID     = flag.String("exp", "", "experiment id (or 'all'); see -list")
		scaleName = flag.String("scale", "std", "compute scale: quick, std, or full")
		seed      = flag.Uint64("seed", 42, "experiment seed")
		outDir    = flag.String("out", "", "directory for CSV output (optional)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		targetC10 = flag.Float64("target-c10", expt.DefaultTargetC10, "table1 accuracy target for SynthC10")
		targetC1h = flag.Float64("target-c100", expt.DefaultTargetC100, "table1 accuracy target for SynthC100")
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
		workers   = flag.Int("workers", 0, "tensor-kernel worker fan-out; 0 tracks GOMAXPROCS (results are bit-identical at any width)")
		ckptDir   = flag.String("checkpoint-dir", "", "root directory for per-run checkpoints (each run gets its own subdirectory)")
		ckptEvery = flag.Int("checkpoint-every", 1, "checkpoint cadence in rounds (with -checkpoint-dir)")
		resume    = flag.Bool("resume", false, "continue interrupted runs from their newest valid checkpoint under -checkpoint-dir")
		codecName = flag.String("codec", "", "payload wire codec for experiment runs: float64raw (default), float32, or int8; the compression experiment sweeps all of them regardless")
		chaosSpec = flag.String("chaos", "", "failures experiment: replace the default crash sweep with this fault plan, e.g. drop=0.1,crash=0.2 (tier keys tierdrop/tierdelay/tierdup/tiercorrupt/tiersendfail/leafcrash target the aggregator tree)")
		asyncMode = flag.Bool("async", false, "run the generic matrix experiments in barrier-free async mode (the async experiment compares sync vs async regardless)")
		bufSize   = flag.Int("buffer-size", 0, "async buffer size K; 0 defaults to half the fleet (with -async)")
		stalAlpha = flag.Float64("staleness-alpha", 0, "async staleness exponent α in 1/(1+s)^α; 0 keeps the engine default (with -async)")
		cliTmo    = flag.Duration("client-timeout", 0, "failures experiment: straggler deadline per distributed round (default 1m)")
		minQuorum = flag.Int("min-quorum", 0, "failures experiment: abort distributed rounds that aggregate fewer uploads; 0 disables")
		availSpec = flag.String("availability", "", "run the generic matrix experiments under a seeded diurnal availability trace, e.g. period=24,min=0.5,max=0.9 (the churn experiment compares fixed vs diurnal regardless)")
		shards    = flag.Int("shards", 0, "reduce distributed experiment runs through an aggregator tree with this many leaves; 0/1 keeps the flat server (the hierarchy experiment compares flat vs tree regardless)")
		treeDepth = flag.Int("tree-depth", 0, "aggregator-tree depth; 0 defaults to 2 when -shards > 1 (only 2 is supported by the runtime)")
		leafTmo   = flag.Duration("leaf-timeout", 0, "treefaults experiment: root-side deadline per shard digest (default 1m)")
		shardQ    = flag.Int("shard-quorum", 0, "treefaults experiment: abort tree rounds that merge fewer shard digests; 0 disables")
	)
	flag.Parse()

	tensor.SetWorkers(*workers)
	if err := expt.SetWireCodec(*codecName); err != nil {
		return err
	}
	expt.SetCheckpointPolicy(*ckptDir, *ckptEvery, *resume)
	plan, err := faults.ParsePlan(*chaosSpec, *seed)
	if err != nil {
		return err
	}
	expt.SetFailureModel(plan, *cliTmo, *minQuorum)
	if !*asyncMode && (*bufSize != 0 || *stalAlpha != 0) {
		return fmt.Errorf("-buffer-size and -staleness-alpha require -async")
	}
	expt.SetAsyncMode(*asyncMode, *bufSize, *stalAlpha)
	if err := expt.SetAvailabilityModel(*availSpec); err != nil {
		return err
	}
	expt.SetTreePolicy(*shards, *treeDepth)
	expt.SetTreeFaultModel(*leafTmo, *shardQ)

	if *debugAddr != "" {
		dbg, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/\n", dbg.Addr())
	}

	if *list {
		fmt.Println("experiments:", strings.Join(expt.ExperimentIDs(), " "))
		return nil
	}
	if *expID == "" {
		return fmt.Errorf("missing -exp (use -list to see ids)")
	}
	sc, err := expt.ScaleByName(*scaleName)
	if err != nil {
		return err
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = expt.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		var res *expt.Result
		if id == "table1" {
			res, err = expt.RunTable1(sc, *seed, *targetC10, *targetC1h)
		} else {
			res, err = expt.Run(id, sc, *seed)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(res.Table())
		fmt.Printf("(%s completed in %s at scale %s)\n\n", id, time.Since(start).Round(time.Millisecond), sc.Name)
		if *outDir != "" {
			if err := writeCSVs(*outDir, res); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSVs(dir string, res *expt.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	path := filepath.Join(dir, res.ID+".csv")
	if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	mdPath := filepath.Join(dir, res.ID+".md")
	if err := os.WriteFile(mdPath, []byte(res.Markdown()), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", mdPath, err)
	}
	if s := res.SeriesCSV(); s != "" {
		path := filepath.Join(dir, res.ID+"_series.csv")
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
	}
	return nil
}
