package fedpkd

import (
	"fedpkd/internal/distrib"
	"fedpkd/internal/fl/engine"
)

// Checkpoint/resume facade. Every algorithm in this package runs on the
// shared round engine, which owns the run-state contract (DESIGN.md §8): a
// checkpoint is one versioned, checksummed file bundling the round counter,
// per-round history, ledger traffic, and every model's weights and optimizer
// state. A run restored from a checkpoint continues bit-identically to one
// that was never interrupted.

// SetCheckpointPolicy enables auto-checkpointing for an algorithm: a durable
// checkpoint is written into dir after every `every` completed rounds. The
// write is crash-safe (temp file + fsync + atomic rename) and earlier round
// files are kept, so the newest previous checkpoint survives until the new
// one is durable.
func SetCheckpointPolicy(algo Algorithm, dir string, every int) error {
	r, err := engine.Of(algo)
	if err != nil {
		return err
	}
	r.SetCheckpointPolicy(dir, every)
	return nil
}

// SaveCheckpoint durably writes the algorithm's full run state into dir and
// returns the written path.
func SaveCheckpoint(algo Algorithm, dir string) (string, error) {
	r, err := engine.Of(algo)
	if err != nil {
		return "", err
	}
	return r.SaveCheckpoint(dir)
}

// ResumeAlgorithm restores a freshly constructed algorithm from a checkpoint
// file, or from the newest valid checkpoint when path is a directory
// (corrupt newer files are skipped, reported in warnings). The algorithm
// must have been built with the same configuration as the checkpointed run.
func ResumeAlgorithm(algo Algorithm, path string) (warnings []string, err error) {
	r, err := engine.Of(algo)
	if err != nil {
		return nil, err
	}
	return r.ResumeAny(path)
}

// CompletedRounds returns how many rounds the algorithm has completed
// (including rounds restored from a checkpoint).
func CompletedRounds(algo Algorithm) (int, error) {
	r, err := engine.Of(algo)
	if err != nil {
		return 0, err
	}
	return r.CurrentRound(), nil
}

// RunAlgorithmUntil runs in-process until the run has completed total
// rounds: a fresh algorithm runs all of them, a resumed one only the
// remainder. Returns the cumulative history.
func RunAlgorithmUntil(algo Algorithm, total int) (*History, error) {
	r, err := engine.Of(algo)
	if err != nil {
		return nil, err
	}
	return r.RunUntil(total)
}

// RunAlgorithmDistributedUntil is RunAlgorithmUntil over the transport
// layer: after ResumeAlgorithm it executes only the remaining rounds.
func RunAlgorithmDistributedUntil(algo Algorithm, mode DistributedMode, total int, rec *Recorder) (*History, error) {
	return distrib.RunAlgorithmUntil(algo, mode, total, rec)
}
