package fedpkd

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fedpkd/internal/fl/engine"
)

// treeRunResult is one distributed run's observable surface: the serialized
// history plus the ledger's totals, split into the client plane (what
// History's cumulative MB reports) and the aggregator-tree backhaul.
type treeRunResult struct {
	histJSON   []byte
	hist       *History
	totalBytes int64
	tierUp     int64
	tierDown   int64
}

// treeRun executes one golden algorithm over the distributed runtime with
// the given topology and collects the equivalence surface.
func treeRun(t *testing.T, name string, mode DistributedMode, topo Topology) treeRunResult {
	t.Helper()
	env := goldenEnv(t)
	algo, err := goldenAlgos(env)[name]()
	if err != nil {
		t.Fatal(err)
	}
	hist, err := RunAlgorithmDistributedOpts(algo, goldenRounds, DistributedOptions{
		Mode: mode, Topology: topo,
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := json.Marshal(hist)
	if err != nil {
		t.Fatal(err)
	}
	r, err := engine.Of(algo)
	if err != nil {
		t.Fatal(err)
	}
	res := treeRunResult{histJSON: j, hist: hist, totalBytes: r.Ledger().TotalBytes()}
	for _, rt := range r.Ledger().Rounds() {
		res.tierUp += rt.TierUp
		res.tierDown += rt.TierDown
	}
	return res
}

// TestTreeMatchesFlat is the tree-reduce ≡ flat-Aggregate equivalence suite:
// every algorithm, run through a depth-2 aggregator tree, must produce a
// byte-identical history and identical client-plane ledger totals to the
// flat single-server run at equal config. The tree may add only the
// separately-billed tier columns (which must be nonzero — a tree that moves
// no tier traffic is not a tree). scripts/check.sh runs this suite under
// -race, so the demultiplexer, the leaf workers, and the root collect are
// also checked for data races.
func TestTreeMatchesFlat(t *testing.T) {
	for name := range goldenAlgos(goldenEnv(t)) {
		name := name
		t.Run(name, func(t *testing.T) {
			flat := treeRun(t, name, ModeBus, Topology{})
			if flat.tierUp != 0 || flat.tierDown != 0 {
				t.Fatalf("flat run billed tier traffic (up %d, down %d)", flat.tierUp, flat.tierDown)
			}
			modes := []DistributedMode{ModeBus}
			if name == "fedpkd" || name == "fedavg" {
				modes = append(modes, ModeTCP)
			}
			for _, mode := range modes {
				tree := treeRun(t, name, mode, Topology{Shards: 2})
				if string(tree.histJSON) != string(flat.histJSON) {
					t.Errorf("%s tree history diverged from flat:\n got: %s\nwant: %s", mode, tree.histJSON, flat.histJSON)
				}
				if tree.totalBytes != flat.totalBytes {
					t.Errorf("%s tree client-plane ledger %d != flat %d", mode, tree.totalBytes, flat.totalBytes)
				}
				if tree.tierUp == 0 || tree.tierDown == 0 {
					t.Errorf("%s tree billed no tier traffic (up %d, down %d)", mode, tree.tierUp, tree.tierDown)
				}
			}
		})
	}
}

// TestTreeCompactFedAvgTolerance pins the compact-reduction tradeoff:
// FedAvg's streaming fold reorders float additions, so a compact tree run
// matches the flat run to tolerance, not bit-for-bit — accuracies within
// 1e-9 per round, client-plane traffic identical (the protocol and payload
// shapes don't change, only the summation order).
func TestTreeCompactFedAvgTolerance(t *testing.T) {
	flat := treeRun(t, "fedavg", ModeBus, Topology{})
	compact := treeRun(t, "fedavg", ModeBus, Topology{Shards: 2, Compact: true})
	if len(compact.hist.Rounds) != len(flat.hist.Rounds) {
		t.Fatalf("round counts diverged: %d vs %d", len(compact.hist.Rounds), len(flat.hist.Rounds))
	}
	for i, fr := range flat.hist.Rounds {
		cr := compact.hist.Rounds[i]
		if math.Abs(cr.ServerAcc-fr.ServerAcc) > 1e-9 || math.Abs(cr.ClientAcc-fr.ClientAcc) > 1e-9 {
			t.Errorf("round %d accuracies diverged past tolerance: (%v,%v) vs (%v,%v)",
				fr.Round, cr.ServerAcc, cr.ClientAcc, fr.ServerAcc, fr.ClientAcc)
		}
		if cr.CumulativeMB != fr.CumulativeMB {
			t.Errorf("round %d client-plane MB diverged: %v vs %v", fr.Round, cr.CumulativeMB, fr.CumulativeMB)
		}
	}
	if compact.tierUp == 0 || compact.tierUp >= treeRun(t, "fedavg", ModeBus, Topology{Shards: 2}).tierUp {
		t.Errorf("compact digests (tier up %d) are not smaller than exact digests", compact.tierUp)
	}
}

// TestTopologyValidation pins the topology option's rejection surface: every
// invalid shape must fail service construction with a diagnostic naming the
// constraint, before any goroutine spawns.
func TestTopologyValidation(t *testing.T) {
	env := goldenEnv(t)
	builds := goldenAlgos(env)
	cases := []struct {
		name    string
		algo    string
		opts    DistributedOptions
		async   bool
		wantSub string
	}{
		{"more shards than clients", "fedavg",
			DistributedOptions{Topology: Topology{Shards: 4}}, false, "non-empty id range"},
		{"negative shards", "fedavg",
			DistributedOptions{Topology: Topology{Shards: -1}}, false, "negative shard count"},
		{"unsupported depth", "fedavg",
			DistributedOptions{Topology: Topology{Shards: 2, Depth: 3}}, false, "depth 3 unsupported"},
		{"compact without tree", "fedavg",
			DistributedOptions{Topology: Topology{Compact: true}}, false, "needs an aggregator tree"},
		{"compact without CompactReducer", "fedpkd",
			DistributedOptions{Topology: Topology{Shards: 2, Compact: true}}, false, "CompactReducer"},
		{"compact with async", "fedavg",
			DistributedOptions{Topology: Topology{Shards: 2, Compact: true}}, true, "asynchronous flushes"},
		{"tree with wire registration", "fedavg",
			DistributedOptions{Topology: Topology{Shards: 2}, WireRegistration: true}, false, "demultiplexer"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			algo, err := builds[tc.algo]()
			if err != nil {
				t.Fatal(err)
			}
			if tc.async {
				if err := SetAsync(algo, asyncGoldenOpts()); err != nil {
					t.Fatal(err)
				}
			}
			_, err = RunAlgorithmDistributedOpts(algo, goldenRounds, tc.opts)
			if err == nil {
				t.Fatalf("invalid topology accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not name the constraint (%q)", err, tc.wantSub)
			}
		})
	}
}

// asyncChurnTreeGolden is the combined-feature golden's content: the full
// history plus the per-tier ledger totals, so a regression in either the
// trajectory or the tree's backhaul accounting moves the file.
type asyncChurnTreeGolden struct {
	TierUpBytes   int64           `json:"tier_up_bytes"`
	TierDownBytes int64           `json:"tier_down_bytes"`
	History       json.RawMessage `json:"history"`
}

// runAsyncChurnTree executes the combined configuration: FedPKD with
// barrier-free async flushes, a diurnal availability trace, and a depth-2
// aggregator tree, over the bus transport.
func runAsyncChurnTree(t *testing.T) asyncChurnTreeGolden {
	t.Helper()
	env := goldenEnv(t)
	algo, err := goldenAlgos(env)["fedpkd"]()
	if err != nil {
		t.Fatal(err)
	}
	if err := SetAsync(algo, asyncGoldenOpts()); err != nil {
		t.Fatal(err)
	}
	trace, err := ParseAvailability("period=3,min=0.5,max=0.9,seed=9", 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := SetAvailability(algo, trace); err != nil {
		t.Fatal(err)
	}
	hist, err := RunAlgorithmDistributedOpts(algo, asyncGoldenFlushes, DistributedOptions{
		Mode: ModeBus, Topology: Topology{Shards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	r, err := engine.Of(algo)
	if err != nil {
		t.Fatal(err)
	}
	g := asyncChurnTreeGolden{History: j}
	for _, rt := range r.Ledger().Rounds() {
		g.TierUpBytes += rt.TierUp
		g.TierDownBytes += rt.TierDown
	}
	return g
}

// TestGoldenAsyncChurnTree pins the full feature stack composed: async
// flushes + availability churn + tree reduction at one seed must replay to a
// byte-identical history AND identical per-tier ledger totals, captured in
// testdata/goldens/async_churn_tree.json. Run with -update-goldens to
// re-capture.
func TestGoldenAsyncChurnTree(t *testing.T) {
	g := runAsyncChurnTree(t)
	if g.TierUpBytes == 0 || g.TierDownBytes == 0 {
		t.Fatalf("combined run billed no tier traffic (up %d, down %d)", g.TierUpBytes, g.TierDownBytes)
	}

	// Replay identity before touching the golden: same seed, same bytes.
	replay := runAsyncChurnTree(t)
	gotJSON, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON = append(gotJSON, '\n')
	replayJSON, err := json.MarshalIndent(replay, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	replayJSON = append(replayJSON, '\n')
	if string(gotJSON) != string(replayJSON) {
		t.Fatalf("same-seed async+churn+tree replay diverged:\n%s\nvs\n%s", gotJSON, replayJSON)
	}

	path := filepath.Join("testdata", "goldens", "async_churn_tree.json")
	if *updateGoldens {
		if err := os.WriteFile(path, gotJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -run TestGoldenAsyncChurnTree -update-goldens): %v", err)
	}
	if string(gotJSON) != string(want) {
		t.Errorf("async+churn+tree run diverged from golden %s:\n got: %s\nwant: %s", path, gotJSON, want)
	}
}
